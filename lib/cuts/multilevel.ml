module G = Bfly_graph.Graph
module Bitset = Bfly_graph.Bitset
module Parallel = Bfly_graph.Parallel
module Perm = Bfly_graph.Perm
module Metrics = Bfly_obs.Metrics
module Span = Bfly_obs.Span
module State = Cut.State
module Cancel = Bfly_resil.Cancel
module Cache = Bfly_cache.Store
module Key = Bfly_cache.Key
module Codec = Bfly_cache.Codec
module Fp = Bfly_cache.Fingerprint

type config = { matching_ratio : float; coarsening_threshold : int }

let default_config = { matching_ratio = 0.9; coarsening_threshold = 64 }

let ml_levels = Metrics.counter "ml.levels"
let ml_moves = Metrics.counter "ml.refine.moves"
let ml_arena = Arena.create ()

(* ------------------------------------------------------------------ *)
(* Coarsening                                                          *)
(* ------------------------------------------------------------------ *)

module Coarsen = struct
  type level = { graph : G.t; vwgt : int array; map : int array }

  let unit_weights g = Array.make (G.n_nodes g) 1

  (* Heavy-cycle matching: visit nodes in a seeded random order; each
     unmatched node merges with the unmatched candidate of highest
     connectivity score, where score(v, u) counts the parallel edges
     between v and u plus the length-2 paths connecting them (first
     candidate touched wins ties), or stays alone when isolated among
     matched nodes. Scoring 2-hop candidates is what lets the contraction
     collapse the butterfly's 4-cycles — the wing pairs of Lemma 2.12,
     which share two common neighbors but no edge — so the hierarchy
     reproduces the paper's mesh-of-stars quotient instead of shredding
     it the way pure heavy-edge matching does. Coarse ids are assigned in
     visit order, so the whole contraction is a deterministic function of
     the rng stream. When [side] is given, only same-side pairs match, so
     the given cut survives the contraction with its exact capacity — the
     invariant the guided (iterated) V-cycles build on. *)
  (* arena slots used by [step]: int buffers 0 = candidate scores,
     1 = touched stack, 2/3 = coarse edge endpoint stacks, 4/5/6 = the
     deduplicated multiplicity CSR *)
  let step ?side ~matching_ratio ~rng ~vwgt g =
    let n = G.n_nodes g in
    if n < 4 then None
    else begin
      let offsets = G.csr_offsets g and adj = G.csr_adj g in
      (* Deduplicate the multiplicity-expanded CSR into (neighbor, mult)
         rows. Parallel slots are contiguous (the adjacency is scattered
         from the sorted edge list), so one linear scan suffices. The
         scoring scan below then multiplies multiplicities instead of
         replaying a bundle's whole neighborhood once per parallel edge —
         the coarse graphs are multigraphs with heavy bundles, where the
         replay is quadratic. Scores and first-touch tie-break order are
         unchanged: a bundle's repeat slots only re-touch nodes already
         touched by its first slot. *)
      let deg2 = Array.length adj in
      let doff = Arena.raw_ints ml_arena ~slot:4 (n + 1) in
      let dadj = Arena.raw_ints ml_arena ~slot:5 (max deg2 1) in
      let dmul = Arena.raw_ints ml_arena ~slot:6 (max deg2 1) in
      let dc = ref 0 in
      for v = 0 to n - 1 do
        doff.(v) <- !dc;
        let i = ref (Array.unsafe_get offsets v) in
        let stop = Array.unsafe_get offsets (v + 1) in
        while !i < stop do
          let u = Array.unsafe_get adj !i in
          let j = ref (!i + 1) in
          while !j < stop && Array.unsafe_get adj !j = u do
            incr j
          done;
          Array.unsafe_set dadj !dc u;
          Array.unsafe_set dmul !dc (!j - !i);
          incr dc;
          i := !j
        done
      done;
      doff.(n) <- !dc;
      let sw = Option.map Bitset.unsafe_words side in
      (* same-side test against the incumbent's backing words (1 = eligible
         when unguided) *)
      let eligible v u =
        match sw with
        | None -> true
        | Some w ->
            (Array.unsafe_get w (Bitset.word_index v) lsr (Bitset.bit_index v)) land 1
            = (Array.unsafe_get w (Bitset.word_index u) lsr (Bitset.bit_index u)) land 1
      in
      let map = Array.make n (-1) in
      let order = Perm.random ~rng n in
      let next_id = ref 0 in
      let score = Arena.ints ml_arena ~slot:0 n in
      let touched = Arena.raw_ints ml_arena ~slot:1 n in
      let top = ref 0 in
      let bump u k =
        if Array.unsafe_get score u = 0 then begin
          touched.(!top) <- u;
          incr top
        end;
        Array.unsafe_set score u (Array.unsafe_get score u + k)
      in
      for i = 0 to n - 1 do
        let v = Perm.apply order i in
        if map.(v) < 0 then begin
          for i = doff.(v) to doff.(v + 1) - 1 do
            let u = Array.unsafe_get dadj i in
            let mu = Array.unsafe_get dmul i in
            if u <> v && map.(u) < 0 && eligible v u then bump u mu;
            (* the intermediate node of a 2-path may itself be matched;
               the path still becomes a parallel bundle after v and u
               merge, so it counts either way *)
            if u <> v then
              for j = doff.(u) to doff.(u + 1) - 1 do
                let w = Array.unsafe_get dadj j in
                if w <> v && w <> u && map.(w) < 0 && eligible v w then
                  bump w (mu * Array.unsafe_get dmul j)
              done
          done;
          let best = ref (-1) and bs = ref 0 in
          (* the stack records candidates in touch order, so the first
             candidate seen wins ties *)
          for s = 0 to !top - 1 do
            let u = Array.unsafe_get touched s in
            if Array.unsafe_get score u > !bs then begin
              bs := score.(u);
              best := u
            end
          done;
          for s = 0 to !top - 1 do
            Array.unsafe_set score (Array.unsafe_get touched s) 0
          done;
          top := 0;
          let id = !next_id in
          incr next_id;
          map.(v) <- id;
          if !best >= 0 then map.(!best) <- id
        end
      done;
      let cn = !next_id in
      if float_of_int cn > matching_ratio *. float_of_int n then None
      else begin
        let cvw = Array.make cn 0 in
        for v = 0 to n - 1 do
          cvw.(map.(v)) <- cvw.(map.(v)) + vwgt.(v)
        done;
        (* parallel edges encode the merged edge weights; edges internal
           to a contracted pair disappear (they can never be cut once the
           pair moves as one node) *)
        let m = G.n_edges g in
        let us = Arena.raw_ints ml_arena ~slot:2 m in
        let vs = Arena.raw_ints ml_arena ~slot:3 m in
        let mc = ref 0 in
        G.iter_edges g (fun a b ->
            let ca = map.(a) and cb = map.(b) in
            if ca <> cb then begin
              us.(!mc) <- ca;
              vs.(!mc) <- cb;
              incr mc
            end);
        Some { graph = G.of_endpoints ~n:cn ~m:!mc us vs; vwgt = cvw; map }
      end
    end

  let project ~map ~n_fine cside =
    let side = Bitset.create n_fine in
    let cw = Bitset.unsafe_words cside in
    let fw = Bitset.unsafe_words side in
    for v = 0 to n_fine - 1 do
      let c = Array.unsafe_get map v in
      let bit = (Array.unsafe_get cw (Bitset.word_index c) lsr (Bitset.bit_index c)) land 1 in
      let wv = Bitset.word_index v in
      Array.unsafe_set fw wv (Array.unsafe_get fw wv lor (bit lsl (Bitset.bit_index v)))
    done;
    side
end

(* ------------------------------------------------------------------ *)
(* Refinement                                                          *)
(* ------------------------------------------------------------------ *)

module Refine = struct
  let tolerance ~vwgt = Array.fold_left max 1 vwgt

  let weight_of ~vwgt side =
    let sw = Bitset.unsafe_words side in
    let wa = ref 0 in
    for v = 0 to Array.length vwgt - 1 do
      let bit = (Array.unsafe_get sw (Bitset.word_index v) lsr (Bitset.bit_index v)) land 1 in
      wa := !wa + (bit * Array.unsafe_get vwgt v)
    done;
    !wa

  let imbalance ~vwgt side =
    let total = Array.fold_left ( + ) 0 vwgt in
    abs ((2 * weight_of ~vwgt side) - total)

  let initial ~rng ~vwgt g =
    let n = G.n_nodes g in
    let total = Array.fold_left ( + ) 0 vwgt in
    let half = total / 2 in
    let perm = Perm.random ~rng n in
    let side = Bitset.create n in
    let wa = ref 0 in
    for i = 0 to n - 1 do
      let v = Perm.apply perm i in
      if !wa + vwgt.(v) <= half then begin
        Bitset.add side v;
        wa := !wa + vwgt.(v)
      end
    done;
    side

  (* Move best-gain nodes off the heavy side until the imbalance is
     within tolerance. Only nodes strictly lighter than the imbalance
     qualify, so every move strictly shrinks it and the loop terminates;
     if no node qualifies (a few huge coarse nodes) the level keeps the
     imbalance it inherited — a finer level will repair it, and at the
     finest level all weights are 1 so the bound is always reached. *)
  let rebalance ~vwgt ~tolerance g st wa total =
    let n = G.n_nodes g in
    let continue = ref true in
    while !continue do
      let d = (2 * !wa) - total in
      if abs d <= tolerance then continue := false
      else begin
        let from_a = d > 0 in
        let need = abs d in
        let best = ref (-1) and bg = ref min_int in
        for v = 0 to n - 1 do
          if State.in_side st v = from_a && vwgt.(v) < need then begin
            let gv = State.gain st v in
            if gv > !bg then begin
              bg := gv;
              best := v
            end
          end
        done;
        if !best < 0 then continue := false
        else begin
          let v = !best in
          wa := (if from_a then !wa - vwgt.(v) else !wa + vwgt.(v));
          State.flip st v
        end
      end
    done

  (* One FM pass over two gain-bucket structures (one per side): pop the
     best feasible move, lock it, update neighbor gains in place, and
     hill-climb — negative-gain moves are taken too — rolling back to the
     best prefix whose imbalance is within tolerance. Moves may wander up
     to [tolerance + 2·wmax] away from balance so a heavy node can cross
     and be compensated later in the pass. *)
  (* one reusable pair of gain-bucket structures per domain: a pass resets
     them to the level's dimensions instead of allocating two fresh
     structures (a reset structure is observationally fresh) *)
  let gain_scratch =
    Domain.DLS.new_key (fun () ->
        (Gain.create ~max_gain:0 0, Gain.create ~max_gain:0 0))

  let fm_pass ?cancel ~vwgt ~tolerance ~wmax g st wa total =
    let n = G.n_nodes g in
    let offsets = G.csr_offsets g and adj = G.csr_adj g in
    let maxg = G.max_degree g in
    let ba, bb = Domain.DLS.get gain_scratch in
    Gain.reset ba ~max_gain:maxg n;
    Gain.reset bb ~max_gain:maxg n;
    let gains = State.gains_array st in
    for v = 0 to n - 1 do
      if State.in_side st v then Gain.insert ba v (Array.unsafe_get gains v)
      else Gain.insert bb v (Array.unsafe_get gains v)
    done;
    let start_cap = State.capacity st in
    let best_cap = ref start_cap in
    let best_len = ref 0 in
    let moves = Arena.raw_ints ml_arena ~slot:7 (n + 1) in
    let n_moves = ref 0 in
    let move_bound = tolerance + (2 * wmax) in
    let feasible v =
      let w = vwgt.(v) in
      let wa' = if State.in_side st v then !wa - w else !wa + w in
      abs ((2 * wa') - total) <= move_bound
    in
    let continue = ref true in
    while !continue do
      if !n_moves land 255 = 255 && Cancel.stop cancel then continue := false
      else begin
        let cand =
          match (Gain.peek ba, Gain.peek bb) with
          | None, None -> None
          | Some (v, _), None | None, Some (v, _) ->
              if feasible v then Some v else None
          | Some (va, ga), Some (vb, gb) ->
              (* higher gain first; ties move off the heavier side so the
                 pass also pulls toward balance *)
              let a_first =
                if ga <> gb then ga > gb else (2 * !wa) - total >= 0
              in
              let first, second = if a_first then (va, vb) else (vb, va) in
              if feasible first then Some first
              else if feasible second then Some second
              else None
        in
        match cand with
        | None -> continue := false
        | Some v ->
            if Gain.mem ba v then Gain.remove ba v else Gain.remove bb v;
            wa := (if State.in_side st v then !wa - vwgt.(v) else !wa + vwgt.(v));
            State.flip st v;
            Array.unsafe_set moves !n_moves v;
            incr n_moves;
            for i = Array.unsafe_get offsets v to
                    Array.unsafe_get offsets (v + 1) - 1 do
              let u = Array.unsafe_get adj i in
              if Gain.mem ba u then Gain.update ba u (Array.unsafe_get gains u)
              else if Gain.mem bb u then Gain.update bb u (Array.unsafe_get gains u)
            done;
            if
              State.capacity st < !best_cap
              && abs ((2 * !wa) - total) <= tolerance
            then begin
              best_cap := State.capacity st;
              best_len := !n_moves
            end
      end
    done;
    (* roll back, newest first, to the best balanced prefix *)
    for s = !n_moves - 1 downto !best_len do
      let v = Array.unsafe_get moves s in
      wa := (if State.in_side st v then !wa - vwgt.(v) else !wa + vwgt.(v));
      State.flip st v
    done;
    Metrics.add ml_moves !best_len;
    !best_cap < start_cap

  let refine ?cancel ~vwgt ~tolerance g side =
    Span.time ~name:"ml.refine" @@ fun () ->
    let st = State.create g side in
    let total = Array.fold_left ( + ) 0 vwgt in
    let wa = ref (weight_of ~vwgt side) in
    rebalance ~vwgt ~tolerance g st wa total;
    let wmax = Array.fold_left max 1 vwgt in
    let improving = ref true in
    while !improving && not (Cancel.stop cancel) do
      improving := fm_pass ?cancel ~vwgt ~tolerance ~wmax g st wa total
    done;
    State.side st
end

(* ------------------------------------------------------------------ *)
(* The V-cycle and the cached, restarted solver                        *)
(* ------------------------------------------------------------------ *)

(* One descent from scratch (side = None) or guided by an incumbent cut
   (side = Some s: coarsening respects s, so the coarsest start is exactly
   s contracted — refinement can only improve on it). *)
let descent ~config ~cancel ~rng ?side g =
  let rec build acc g vwgt side =
    if G.n_nodes g <= config.coarsening_threshold || Cancel.stop cancel then
      (acc, g, vwgt, side)
    else
      match
        Span.time ~name:"ml.coarsen" @@ fun () ->
        Coarsen.step ?side ~matching_ratio:config.matching_ratio ~rng ~vwgt g
      with
      | None -> (acc, g, vwgt, side)
      | Some { Coarsen.graph = cg; vwgt = cvw; map } ->
          let cside =
            Option.map
              (fun s ->
                let cs = Bitset.create (G.n_nodes cg) in
                for v = 0 to G.n_nodes g - 1 do
                  if Bitset.mem s v then Bitset.add cs map.(v)
                done;
                cs)
              side
          in
          build ((g, vwgt, map) :: acc) cg cvw cside
  in
  let stack, cg, cvw, cside = build [] g (Coarsen.unit_weights g) side in
  Metrics.add ml_levels (List.length stack + 1);
  let ctol = Refine.tolerance ~vwgt:cvw in
  let side =
    match cside with
    | Some s -> Refine.refine ?cancel ~vwgt:cvw ~tolerance:ctol cg s
    | None ->
        (* the coarsest graph is tiny, so afford it several greedy starts
           and keep the cheapest refined cut (earliest start wins ties) *)
        let best = ref None in
        for _ = 1 to 4 do
          let s = Refine.initial ~rng ~vwgt:cvw cg in
          let s = Refine.refine ?cancel ~vwgt:cvw ~tolerance:ctol cg s in
          let c = Bfly_graph.Traverse.boundary_edges cg s in
          match !best with
          | Some (bc, _) when bc <= c -> ()
          | _ -> best := Some (c, s)
        done;
        snd (Option.get !best)
  in
  List.fold_left
    (fun cside (fg, fvw, map) ->
      let fside = Coarsen.project ~map ~n_fine:(G.n_nodes fg) cside in
      Refine.refine ?cancel ~vwgt:fvw
        ~tolerance:(Refine.tolerance ~vwgt:fvw)
        fg fside)
    side stack

(* A restart: one descent from scratch, then guided descents re-coarsening
   around the incumbent cut until one fails to improve it. The guided
   rounds move whole same-side clusters across the cut, which is what
   lifts the result out of the column-cut local optimum the flat kernels
   get stuck in. *)
let vcycle ~config ~cancel ~seed g =
  let rng = Random.State.make [| 0x6d6c; seed |] in
  let side = ref (descent ~config ~cancel ~rng g) in
  let cap = ref (Bfly_graph.Traverse.boundary_edges g !side) in
  let improving = ref true in
  let rounds = ref 0 in
  while !improving && !rounds < 4 && not (Cancel.stop cancel) do
    incr rounds;
    let side' = descent ~config ~cancel ~rng ~side:!side g in
    let cap' = Bfly_graph.Traverse.boundary_edges g side' in
    if cap' < !cap then begin
      cap := cap';
      side := side'
    end
    else improving := false
  done;
  (!cap, !side)

(* The determinism, caching and metrics plumbing below mirrors the flat
   kernels in heuristics.ml and honors the same contract (seeds drawn
   before the cache lookup, degraded results never cached, ties toward
   the earliest restart). *)

let default_rng () = Random.State.make [| 0x5eed |]

let derive_seeds rng k =
  let seeds = Array.make k 0 in
  for i = 0 to k - 1 do
    seeds.(i) <- Random.State.bits rng
  done;
  seeds

let by_capacity (c1, _) (c2, _) = Stdlib.compare c1 c2

let cut_encode (c, side) =
  [ ("value", Codec.Int c); ("witness", Codec.bits side) ]

let cut_decode n payload =
  match
    (Codec.get_int payload "value", Codec.get_bits payload "witness" ~capacity:n)
  with
  | Some c, Some side -> Some (c, side)
  | _ -> None

let cut_verify g (c, side) =
  let n = G.n_nodes g in
  let card = Bitset.cardinal side in
  card >= n / 2
  && card <= (n + 1) / 2
  && Bfly_graph.Traverse.boundary_edges g side = c

let bisect ?rng ?(restarts = 4) ?(config = default_config) ?cancel g =
  let rng = match rng with Some r -> r | None -> default_rng () in
  let cancel = Cancel.resolve cancel in
  Span.time ~name:"heuristics.ml" @@ fun () ->
  let seeds = derive_seeds rng restarts in
  let key =
    Key.make ~solver:"cuts.heuristics.ml" ~salt:"ml/1"
      ~params:
        [
          ("restarts", string_of_int restarts);
          ("matching_ratio", string_of_float config.matching_ratio);
          ("coarsening_threshold", string_of_int config.coarsening_threshold);
        ]
      ~fingerprint:(Fp.int_array (Fp.graph Fp.seed g) seeds)
  in
  match
    Cache.lookup ~key ~decode:(cut_decode (G.n_nodes g)) ~verify:(cut_verify g)
  with
  | Some v -> v
  | None ->
      let restart i = vcycle ~config ~cancel ~seed:seeds.(i) g in
      let c, side = Parallel.best_of ~compare:by_capacity ~restarts restart in
      Metrics.add (Metrics.counter "heuristics.ml.restarts") restarts;
      Metrics.set
        (Metrics.gauge "heuristics.ml.best_capacity")
        (float_of_int c);
      if not (Cancel.stop cancel) then Cache.put ~key ~encode:cut_encode (c, side);
      (c, side)
