(** Certified bisection lower bounds for arbitrary connected graphs.

    The paper's [K_N]-embedding technique (Section 4.2 /
    [Bfly_embed.Lower_bounds.bw_bound]), freed from closed-form guests:
    route every ordered node pair of the complete graph over the BFS tree
    of its source. Any bisection of an [n]-node graph separates
    [2·⌈n/2⌉·⌊n/2⌋] ordered pairs; each separated pair's route crosses
    the cut at least once, and a cut of capacity [w] contains at most [w]
    distinct endpoint pairs ("bundles", so parallel edges cannot inflate
    the bound), each carrying at most the worst per-bundle congestion
    [c]. Hence

    {v BW(g) >= ceil(2·⌈n/2⌉·⌊n/2⌋ / c) v}

    — a certificate that needs no search and no randomness: BFS scans
    adjacency in CSR order and the congestion totals are integer sums,
    so the bound is deterministic at any domain count, which is what the
    random-regular campaign requires of its per-instance lower bound
    (the supervised branch-and-bound's interval ends, by contrast,
    depend on cancellation timing). O(n·(n+m)) time, parallelized over
    sources; ~0.06n on random cubic graphs, exact on [K_n] and cycles.

    Metrics: counter [cuts.certificate.kn], timer span
    [cuts.certificate]. *)

val kn_congestion : Bfly_graph.Graph.t -> int option
(** [kn_congestion g] — the worst per-bundle congestion of the BFS-tree
    all-ordered-pairs routing; [None] when [g] is disconnected (some
    pairs have no route), [Some 0] for graphs with at most one node. *)

val kn_bound : Bfly_graph.Graph.t -> int
(** [kn_bound g] — the certified lower bound above; [0] for disconnected
    or trivial graphs (a disconnected graph can have a zero-capacity
    bisection). *)
