module G = Bfly_graph.Graph
module Bitset = Bfly_graph.Bitset
module Parallel = Bfly_graph.Parallel
module Butterfly = Bfly_networks.Butterfly
module Wrapped = Bfly_networks.Wrapped
module Ccc = Bfly_networks.Ccc
module Hypercube = Bfly_networks.Hypercube
module Cancel = Bfly_resil.Cancel

type mos_params = { t1 : int; t3 : int; r1 : int; r3 : int }

let pp_mos_params ppf p =
  Format.fprintf ppf "{t1=%d; t3=%d; r1=%d; r3=%d}" p.t1 p.t3 p.r1 p.r3

(* ------------------------------------------------------------------ *)
(* Column cuts                                                         *)
(* ------------------------------------------------------------------ *)

let butterfly_column_cut b =
  let side = Bitset.create (Butterfly.size b) in
  let top = Butterfly.n b / 2 in
  for idx = 0 to Butterfly.size b - 1 do
    if Butterfly.col_of b idx < top then Bitset.add side idx
  done;
  side

let wrapped_column_cut w =
  let side = Bitset.create (Wrapped.size w) in
  let top = Wrapped.n w / 2 in
  for idx = 0 to Wrapped.size w - 1 do
    if Wrapped.col_of w idx < top then Bitset.add side idx
  done;
  side

let ccc_dimension_cut c =
  let side = Bitset.create (Ccc.size c) in
  let top = Ccc.n c / 2 in
  for idx = 0 to Ccc.size c - 1 do
    if Ccc.cycle_of c idx < top then Bitset.add side idx
  done;
  side

let hypercube_cut h =
  let side = Bitset.create (Hypercube.size h) in
  for w = 0 to (Hypercube.size h / 2) - 1 do
    Bitset.add side w
  done;
  side

(* ------------------------------------------------------------------ *)
(* MOS pullback                                                        *)
(* ------------------------------------------------------------------ *)

(* Geometry shared by prediction and materialization. *)
type geometry = {
  ell : int; (* log n *)
  n : int;
  jj : int; (* 2^t3 input classes, indexed by the low t3 column bits *)
  kk : int; (* 2^t1 output classes, indexed by the high t1 column bits *)
  bc : int; (* columns per middle block: n / 2^(t1+t3) *)
  bs : int; (* nodes per middle block *)
  unit_edges : int; (* butterfly edges per mesh-of-stars edge: 2·bc *)
  m1s : int; (* nodes per input class part *)
  m3s : int;
  target : int; (* |S| aimed for: ⌊N/2⌋ *)
}

let geometry b { t1; t3; _ } =
  let ell = Butterfly.log_n b in
  if t1 < 1 || t3 < 1 || t1 + t3 > ell then
    invalid_arg "Constructions.mos: need 1 <= t1, 1 <= t3, t1+t3 <= log n";
  let n = Butterfly.n b in
  let jj = 1 lsl t3 and kk = 1 lsl t1 in
  let bc = n / (jj * kk) in
  let levels_mid = ell - t1 - t3 + 1 in
  {
    ell;
    n;
    jj;
    kk;
    bc;
    bs = levels_mid * bc;
    unit_edges = 2 * bc;
    m1s = t1 * n / jj;
    m3s = t3 * n / kk;
    target = Butterfly.size b / 2;
  }

(* Decide block contents: given the need (nodes still required in S after
   placing the class parts and the always-in-S AA blocks), distribute over
   mixed blocks first (cost already paid), then convert AA or OO blocks at
   2 units apiece. Returns (amount drawn from mixed, amount removed from AA,
   amount added from OO, conversion-unit cost), or None when infeasible. *)
let plan geo ~n_aa ~n_mix ~n_oo ~need =
  let ceil_div a b = (a + b - 1) / b in
  if need >= 0 && need <= n_mix * geo.bs then Some (need, 0, 0, 0)
  else if need < 0 then begin
    let deficit = -need in
    if deficit > n_aa * geo.bs then None
    else Some (0, deficit, 0, 2 * ceil_div deficit geo.bs)
  end
  else begin
    let excess = need - (n_mix * geo.bs) in
    if excess > n_oo * geo.bs then None
    else Some (n_mix * geo.bs, 0, excess, 2 * ceil_div excess geo.bs)
  end

let counts geo { r1; r3; _ } =
  if r1 < 0 || r1 > geo.jj || r3 < 0 || r3 > geo.kk then
    invalid_arg "Constructions.mos: class counts out of range";
  let n_aa = r1 * r3 in
  let n_mix = (r1 * (geo.kk - r3)) + ((geo.jj - r1) * r3) in
  let n_oo = (geo.jj - r1) * (geo.kk - r3) in
  let base = (r1 * geo.m1s) + (r3 * geo.m3s) + (n_aa * geo.bs) in
  (n_aa, n_mix, n_oo, geo.target - base)

let mos_predicted_cost b params =
  let geo = geometry b params in
  let n_aa, n_mix, n_oo, need = counts geo params in
  match plan geo ~n_aa ~n_mix ~n_oo ~need with
  | None -> None
  | Some (_, _, _, conv) -> Some (geo.unit_edges * (n_mix + conv))

let mos_pullback_cut b params =
  let geo = geometry b params in
  let { t1; t3; r1; r3 } = params in
  let n_aa, n_mix, n_oo, need = counts geo params in
  match plan geo ~n_aa ~n_mix ~n_oo ~need with
  | None -> invalid_arg "Constructions.mos_pullback_cut: infeasible balance"
  | Some (from_mix, from_aa, from_oo, _) ->
      let side = Bitset.create (Butterfly.size b) in
      (* class parts *)
      for w = 0 to geo.n - 1 do
        if w land (geo.jj - 1) < r1 then
          for level = 0 to t1 - 1 do
            Bitset.add side (Butterfly.node b ~col:w ~level)
          done;
        if w lsr (geo.ell - t1) < r3 then
          for level = geo.ell - t3 + 1 to geo.ell do
            Bitset.add side (Butterfly.node b ~col:w ~level)
          done
      done;
      (* middle blocks: iterate and fill the decided amount of each.
         [from_top = true] puts the S portion at the low levels (used when
         the block's M1-side class is in S, and for OO conversions). *)
      let fill_block ~h ~a ~amount ~from_top =
        if amount > 0 then begin
          let levels_mid = geo.ell - t1 - t3 + 1 in
          let col mid = (h lsl (geo.ell - t1)) lor (mid lsl t3) lor a in
          let remaining = ref amount in
          for step = 0 to levels_mid - 1 do
            let level =
              if from_top then t1 + step else geo.ell - t3 - step
            in
            for mid = 0 to geo.bc - 1 do
              if !remaining > 0 then begin
                Bitset.add side (Butterfly.node b ~col:(col mid) ~level);
                decr remaining
              end
            done
          done
        end
      in
      (* mutable budgets *)
      let mix_left = ref from_mix in
      let aa_removed_left = ref from_aa in
      let oo_left = ref from_oo in
      for h = 0 to geo.kk - 1 do
        for a = 0 to geo.jj - 1 do
          let m1_in = a < r1 and m3_in = h < r3 in
          match (m1_in, m3_in) with
          | true, true ->
              (* AA: full unless part of the removal budget *)
              let removed = min geo.bs !aa_removed_left in
              aa_removed_left := !aa_removed_left - removed;
              (* keep the S portion adjacent to the M1 side (top) *)
              fill_block ~h ~a ~amount:(geo.bs - removed) ~from_top:true
          | false, false ->
              let amount = min geo.bs !oo_left in
              oo_left := !oo_left - amount;
              fill_block ~h ~a ~amount ~from_top:true
          | true, false ->
              let amount = min geo.bs !mix_left in
              mix_left := !mix_left - amount;
              fill_block ~h ~a ~amount ~from_top:true
          | false, true ->
              let amount = min geo.bs !mix_left in
              mix_left := !mix_left - amount;
              fill_block ~h ~a ~amount ~from_top:false
        done
      done;
      assert (!mix_left = 0 && !aa_removed_left = 0 && !oo_left = 0);
      assert (Bitset.cardinal side = geo.target);
      side

(* ------------------------------------------------------------------ *)
(* Dimension-aligned planar cuts for product networks                  *)
(* ------------------------------------------------------------------ *)

let c_dimension_cuts = Bfly_obs.Metrics.counter "constructions.dimension.cuts"

let dims_geometry ~dims ~axis =
  let dims = Array.of_list dims in
  let d = Array.length dims in
  if d = 0 then invalid_arg "Constructions.dimension_cut: empty dims";
  Array.iter
    (fun a -> if a < 1 then invalid_arg "Constructions.dimension_cut: dims >= 1")
    dims;
  if axis < 0 || axis >= d then
    invalid_arg "Constructions.dimension_cut: axis out of range";
  let n = Array.fold_left ( * ) 1 dims in
  let stride = ref 1 in
  for i = axis + 1 to d - 1 do
    stride := !stride * dims.(i)
  done;
  (n, dims.(axis), !stride)

let dimension_cut ~dims ~axis =
  let n, a, stride = dims_geometry ~dims ~axis in
  if n < 2 then invalid_arg "Constructions.dimension_cut: need >= 2 nodes";
  let layer = n / a in
  let target = n / 2 in
  let full = target / layer and rem = target mod layer in
  let side = Bitset.create n in
  let taken_mid = ref 0 in
  for v = 0 to n - 1 do
    let c = v / stride mod a in
    if c < full then Bitset.add side v
    else if c = full && !taken_mid < rem then begin
      Bitset.add side v;
      incr taken_mid
    end
  done;
  Bfly_obs.Metrics.incr c_dimension_cuts;
  side

let best_dimension_cut ~dims g =
  let d = List.length dims in
  let n = List.fold_left ( * ) 1 dims in
  if n <> G.n_nodes g then
    invalid_arg "Constructions.best_dimension_cut: dims do not match the graph";
  let best = ref None in
  for axis = 0 to d - 1 do
    let side = dimension_cut ~dims ~axis in
    let cap = G.cut_size g side in
    match !best with
    | Some (_, c, _) when c <= cap -> ()
    | _ -> best := Some (axis, cap, side)
  done;
  match !best with Some r -> r | None -> assert false

let c_candidates = Bfly_obs.Metrics.counter "constructions.mos.candidates"

(* ---- result cache for the pullback sweep ----
   The instance is fully determined by [log n]; the sweep is deterministic
   (sequential-order tie-breaking), so entries are keyed on
   (log n, max_classes). Hits are re-verified from first principles: the
   closed-form predicted cost is re-evaluated for the cached parameters,
   the witness side must be an exact bisection, and its boundary is
   recounted on the butterfly graph. *)

let pullback_encode (({ t1; t3; r1; r3 } : mos_params), cost, side) =
  Bfly_cache.Codec.
    [
      ("t1", Int t1);
      ("t3", Int t3);
      ("r1", Int r1);
      ("r3", Int r3);
      ("cost", Int cost);
      ("witness", bits side);
    ]

let pullback_decode b payload =
  let open Bfly_cache.Codec in
  match
    ( get_int payload "t1",
      get_int payload "t3",
      get_int payload "r1",
      get_int payload "r3",
      get_int payload "cost",
      get_bits payload "witness" ~capacity:(Butterfly.size b) )
  with
  | Some t1, Some t3, Some r1, Some r3, Some cost, Some side ->
      Some ({ t1; t3; r1; r3 }, cost, side)
  | _ -> None

let pullback_verify b (params, cost, side) =
  match mos_predicted_cost b params with
  | exception Invalid_argument _ -> false
  | None -> false
  | Some predicted ->
      predicted = cost
      && Bitset.cardinal side = Butterfly.size b / 2
      && Bfly_graph.Traverse.boundary_edges (Butterfly.graph b) side = cost

let best_mos_pullback ?(max_classes = 256) ?cancel b =
  let cancel = Cancel.resolve cancel in
  let ell = Butterfly.log_n b in
  if ell < 2 then invalid_arg "Constructions.best_mos_pullback: log n < 2";
  Bfly_obs.Span.time ~name:"constructions.mos_pullback" @@ fun () ->
  let key =
    Bfly_cache.Key.make ~solver:"cuts.constructions.best_mos_pullback"
      ~salt:"mos-pullback/1"
      ~params:[ ("max_classes", string_of_int max_classes) ]
      ~fingerprint:
        Bfly_cache.Fingerprint.(int (string seed "butterfly") ell)
  in
  let compute () =
  (* the (t1, t3) window choices are independent — sweep them across the
     domain pool, scanning each window's (r1, r3) grid locally; ties keep
     the earliest candidate in the sequential enumeration order, so the
     winning parameters do not depend on the domain count *)
  let windows =
    List.concat_map
      (fun t1 -> List.init (ell - t1) (fun i -> (t1, i + 1)))
      (List.init (ell - 1) (fun i -> i + 1))
    |> Array.of_list
  in
  let best_in_window idx =
    let t1, t3 = windows.(idx) in
    (* window 0 is always scanned even under an expired token, so a
       degraded sweep still returns a real (if sub-optimal) cut *)
    if idx > 0 && Cancel.stop cancel then None
    else if 1 lsl t1 > max_classes || 1 lsl t3 > max_classes then None
    else begin
      let best = ref None in
      let scanned = ref 0 in
      for r1 = 0 to 1 lsl t3 do
        for r3 = 0 to 1 lsl t1 do
          incr scanned;
          let params = { t1; t3; r1; r3 } in
          match mos_predicted_cost b params with
          | None -> ()
          | Some cost -> (
              match !best with
              | Some (_, c) when c <= cost -> ()
              | _ -> best := Some (params, cost))
        done
      done;
      Bfly_obs.Metrics.add c_candidates !scanned;
      !best
    end
  in
  let keep_earlier a b =
    match (a, b) with
    | None, x | x, None -> x
    | (Some (_, c1) as a), (Some (_, c2) as b) -> if c2 < c1 then b else a
  in
  let best =
    Parallel.reduce_range ~lo:0 ~hi:(Array.length windows) ~init:None
      ~f:best_in_window ~combine:keep_earlier
  in
  match best with
  | None ->
      invalid_arg "Constructions.best_mos_pullback: no feasible parameters"
  | Some (params, cost) -> (params, cost, mos_pullback_cut b params)
  in
  match
    Bfly_cache.Store.lookup ~key ~decode:(pullback_decode b)
      ~verify:(pullback_verify b)
  with
  | Some v -> v
  | None ->
      let v = compute () in
      (* a sweep truncated by cancellation must not be cached as if it had
         covered every window *)
      if not (Cancel.stop cancel) then
        Bfly_cache.Store.put ~key ~encode:pullback_encode v;
      v
