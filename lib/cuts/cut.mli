(** Cuts, bisections and U-bisections (Sections 1.2 and 2.1).

    A cut [(S, S̄)] of a graph is represented by the bitset of nodes in [S].
    Its capacity [C(S,S̄)] is the number of edges with exactly one endpoint
    in [S], counted with multiplicity. *)

type t

(** [make g side] wraps a side set (capacity of the bitset must equal the
    node count of [g]). *)
val make : Bfly_graph.Graph.t -> Bfly_graph.Bitset.t -> t

val graph : t -> Bfly_graph.Graph.t

(** The set [S]. *)
val side : t -> Bfly_graph.Bitset.t

(** [C(S, S̄)]. *)
val capacity : t -> int

(** [recount c] is {!capacity} via the word-indexed {!Bfly_graph.Graph.cut_size}
    kernel, bypassing the traversal layer's instrumentation. Same value. *)
val recount : t -> int

(** [|S|]. *)
val side_size : t -> int

(** [is_bisection c]: both sides have at most [⌈N/2⌉] nodes. *)
val is_bisection : t -> bool

(** [bisects c u]: [|S∩U| ≤ |S̄∩U| ≤ |S∩U| + 1] up to swapping the sides,
    i.e. the cut splits [U] as evenly as possible (Section 2.1). *)
val bisects : t -> Bfly_graph.Bitset.t -> bool

(** Cut edges, one pair per crossing edge (with multiplicity). *)
val cut_edges : t -> (int * int) list

(** Mutable partition state with incremental gain maintenance, shared by the
    Kernighan–Lin, Fiduccia–Mattheyses and annealing heuristics. The {e gain}
    of a node is the decrease in capacity obtained by moving it to the other
    side (external degree minus internal degree). *)
module State : sig
  type state

  val create : Bfly_graph.Graph.t -> Bfly_graph.Bitset.t -> state
  val capacity : state -> int
  val side_size : state -> int
  val in_side : state -> int -> bool
  val gain : state -> int -> int

  (** The backing words of the current side set — not a copy, and live: a
      {!flip} mutates them in place. Read-only escape hatch for the KL/FM
      candidate scans, which enumerate eligible movers by masking these
      words against a lock set and extracting bits ({!Bfly_graph.Bitset}'s
      word layout: 63 bits per word, tail bits zero). *)
  val side_words : state -> int array

  (** The gain array itself (indexed by node) — not a copy, read-only.
      Lets selection scans read gains without a call per candidate. *)
  val gains_array : state -> int array

  (** [flip st v] moves [v] to the other side, updating capacity and the
      gains of [v] and its neighbors in O(deg v) — a branch-free word
      update per neighbor, no closure. *)
  val flip : state -> int -> unit

  (** Snapshot of the current side set. *)
  val side : state -> Bfly_graph.Bitset.t
end
