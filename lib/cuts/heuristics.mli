(** Heuristic minimum-bisection solvers for instances beyond exact reach.

    None of these are part of the paper; they provide independent upper
    bounds on [BW] that the experiments compare against the paper's
    constructions (Theorem 2.20's [2(√2−1)n] upper bound for [B_n]) and its
    certified lower bounds. All return balanced cuts (side sizes within one
    of [N/2]).

    Restarted solvers run their restarts concurrently on the
    {!Bfly_graph.Parallel} domain pool. Restart seeds are derived
    sequentially from [rng] before any restart runs and ties are broken
    toward the earliest restart, so a fixed [rng] seed gives identical
    results at any [BFLY_DOMAINS] setting. Each solver records its work in
    {!Bfly_obs.Metrics} under [heuristics.<kernel>.*] and a timer span of
    the same stem (e.g. [heuristics.kl.restarts], [heuristics.kl]).

    Because results are deterministic in (graph, parameters, derived
    seeds), every kernel persists its result in the {!Bfly_cache} store
    keyed on exactly those. The seeds are drawn from [rng] {e before} the
    cache is consulted — the same draws a computed run makes — so a hit
    returns the identical cut {e and} leaves the caller's rng stream in
    the identical state. Cached cuts are re-verified (balance, recounted
    capacity) before being served; the [heuristics.<kernel>.*] counters
    only advance on actual compute.

    {1 Graceful degradation}

    The restarted solvers accept a {!Bfly_resil.Cancel} token ([?cancel],
    falling back to the ambient token). A triggered token stops refinement
    at the next pass/step boundary; the cut returned is whatever the
    restarts had reached — still balanced and correctly counted, just not
    converged. Degraded results are {e not} written to the result cache
    (a later uninterrupted run must not be served them), though a cached
    converged result is still served under an expired token. {!spectral}
    ignores cancellation: it is cheap and anchors the portfolio. *)

val kernighan_lin :
  ?rng:Random.State.t ->
  ?restarts:int ->
  ?cancel:Bfly_resil.Cancel.t ->
  Bfly_graph.Graph.t ->
  int * Bfly_graph.Bitset.t
(** [kernighan_lin ?rng ?restarts ?cancel g] — classic KL swap passes from
    random balanced starts, restarts in parallel. O(passes·n²) work per
    restart; intended for [n <= ~2000]. [restarts] defaults to 4.
    Cancellation is honored between KL passes. *)

val fiduccia_mattheyses :
  ?rng:Random.State.t ->
  ?restarts:int ->
  ?cancel:Bfly_resil.Cancel.t ->
  Bfly_graph.Graph.t ->
  int * Bfly_graph.Bitset.t
(** [fiduccia_mattheyses ?rng ?restarts ?cancel g] — FM single-node moves
    with bucketed gains and balance tolerance 1, restarts in parallel.
    O(passes·m) work per restart; practical to hundreds of thousands of
    edges. [restarts] defaults to 4. Cancellation is honored between FM
    passes. *)

val spectral : Bfly_graph.Graph.t -> int * Bfly_graph.Bitset.t
(** [spectral g] — Fiedler-vector median split (power iteration on the
    Laplacian complement, ones-deflated), refined by one FM descent.
    Deterministic: no rng, no restarts. *)

val annealing :
  ?rng:Random.State.t ->
  ?steps:int ->
  ?restarts:int ->
  ?cancel:Bfly_resil.Cancel.t ->
  Bfly_graph.Graph.t ->
  int * Bfly_graph.Bitset.t
(** [annealing ?rng ?steps ?restarts ?cancel g] — simulated annealing over
    balanced-swap moves with geometric cooling. [restarts] (default 1)
    independent chains run in parallel; the coolest final cut wins.
    Cancellation is checked every 1024 annealing steps; the best cut seen
    so far in each chain is kept. *)

val best_of :
  ?rng:Random.State.t ->
  ?cancel:Bfly_resil.Cancel.t ->
  Bfly_graph.Graph.t ->
  int * Bfly_graph.Bitset.t * string
(** [best_of ?rng ?cancel g] runs a portfolio appropriate to the graph's
    size — concurrently, each member on its own derived seed — and returns
    the best cut found, labeled by the winning method (earliest listed wins
    ties, so the label is deterministic too). The token (explicit, else
    ambient) is resolved once and handed to every cancellable member. *)
