type node = {
  digest : string;
  payload : Codec.payload;
  mutable prev : node option; (* toward most-recent *)
  mutable next : node option; (* toward least-recent *)
}

type t = {
  mutable capacity : int;
  table : (string, node) Hashtbl.t;
  mutable head : node option; (* most recently used *)
  mutable tail : node option; (* least recently used *)
}

let create ~capacity = { capacity; table = Hashtbl.create 64; head = None; tail = None }

let unlink t n =
  (match n.prev with
  | Some p -> p.next <- n.next
  | None -> t.head <- n.next);
  (match n.next with
  | Some nx -> nx.prev <- n.prev
  | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let find t digest =
  match Hashtbl.find_opt t.table digest with
  | None -> None
  | Some n ->
      unlink t n;
      push_front t n;
      Some n.payload

let evict_over t =
  let evicted = ref 0 in
  while Hashtbl.length t.table > t.capacity do
    match t.tail with
    | None -> Hashtbl.reset t.table (* unreachable: list tracks the table *)
    | Some n ->
        unlink t n;
        Hashtbl.remove t.table n.digest;
        incr evicted
  done;
  !evicted

let add t digest payload =
  if t.capacity = 0 then 0
  else begin
    (match Hashtbl.find_opt t.table digest with
    | Some old -> unlink t old; Hashtbl.remove t.table digest
    | None -> ());
    let n = { digest; payload; prev = None; next = None } in
    push_front t n;
    Hashtbl.replace t.table digest n;
    evict_over t
  end

let remove t digest =
  match Hashtbl.find_opt t.table digest with
  | None -> ()
  | Some n ->
      unlink t n;
      Hashtbl.remove t.table digest

let length t = Hashtbl.length t.table

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None

let set_capacity t k =
  t.capacity <- max 0 k;
  evict_over t
