type t = int64

(* FNV-1a, 64-bit *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let seed = fnv_offset

let byte (h : t) (b : int) : t =
  Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) fnv_prime

(* tags keep differently-typed streams from colliding *)
let tag_int = 0x01
let tag_string = 0x02
let tag_array = 0x03
let tag_bitset = 0x04
let tag_graph = 0x05

let raw_int h v =
  let h = ref h in
  for shift = 0 to 7 do
    h := byte !h ((v lsr (8 * shift)) land 0xff)
  done;
  !h

let int h v = raw_int (byte h tag_int) v

let string h s =
  let h = ref (raw_int (byte h tag_string) (String.length s)) in
  String.iter (fun c -> h := byte !h (Char.code c)) s;
  !h

let int_array h a =
  let h = ref (raw_int (byte h tag_array) (Array.length a)) in
  Array.iter (fun v -> h := raw_int !h v) a;
  !h

(* Word-granularity absorption for the bulk combinators below: one
   xor-multiply per native word instead of eight byte steps. Still FNV-1a
   in shape (and as stable: no [Hashtbl.hash], no [Marshal]), but a
   distinct stream from the byte-fed combinators — [bitset] and [graph]
   feed their type tags through [byte] first, so the two stream kinds
   cannot be confused. *)
let word (h : t) (v : int) : t = Int64.mul (Int64.logxor h (Int64.of_int v)) fnv_prime

let bitset h s =
  let module Bitset = Bfly_graph.Bitset in
  let h = byte h tag_bitset in
  let h = raw_int h (Bitset.capacity s) in
  (* the backing words are canonical for the set (tail bits are zero by
     invariant), so hashing them word-wise is both exact and O(n/63) *)
  let words = Bitset.unsafe_words s in
  let acc = ref h in
  for i = 0 to Bitset.word_count s - 1 do
    acc := word !acc (Array.unsafe_get words i)
  done;
  !acc

let graph h g =
  let module G = Bfly_graph.Graph in
  let h = byte h tag_graph in
  let h = raw_int h (G.n_nodes g) in
  let h = raw_int h (G.n_edges g) in
  (* the graph's own edge list is already normalized and sorted (the
     canonical form) — fold it in place: no copy, no re-sort *)
  let acc = ref h in
  G.iter_edges g (fun u v -> acc := word (word !acc u) v);
  !acc

let to_hex h = Printf.sprintf "%016Lx" h
