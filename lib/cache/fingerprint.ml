type t = int64

(* FNV-1a, 64-bit *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let seed = fnv_offset

let byte (h : t) (b : int) : t =
  Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) fnv_prime

(* tags keep differently-typed streams from colliding *)
let tag_int = 0x01
let tag_string = 0x02
let tag_array = 0x03
let tag_bitset = 0x04
let tag_graph = 0x05

let raw_int h v =
  let h = ref h in
  for shift = 0 to 7 do
    h := byte !h ((v lsr (8 * shift)) land 0xff)
  done;
  !h

let int h v = raw_int (byte h tag_int) v

let string h s =
  let h = ref (raw_int (byte h tag_string) (String.length s)) in
  String.iter (fun c -> h := byte !h (Char.code c)) s;
  !h

let int_array h a =
  let h = ref (raw_int (byte h tag_array) (Array.length a)) in
  Array.iter (fun v -> h := raw_int !h v) a;
  !h

let bitset h s =
  let module Bitset = Bfly_graph.Bitset in
  let h = byte h tag_bitset in
  let h = raw_int h (Bitset.capacity s) in
  let h = raw_int h (Bitset.cardinal s) in
  Bitset.fold s h (fun acc i -> raw_int acc i)

let graph h g =
  let module G = Bfly_graph.Graph in
  let edges = G.edges g in
  Array.sort compare edges;
  let h = byte h tag_graph in
  let h = raw_int h (G.n_nodes g) in
  let h = raw_int h (Array.length edges) in
  Array.fold_left (fun acc (u, v) -> raw_int (raw_int acc u) v) h edges

let to_hex h = Printf.sprintf "%016Lx" h
