(** Typed payload encoding for cache entries.

    A payload is an ordered list of named fields — integers, strings and
    node sets — with a line-oriented, fully self-describing text encoding.
    The format is deliberately {e not} [Marshal]: it is stable across OCaml
    versions, diffable, and every decoding path validates shape and ranges,
    so a truncated or bit-flipped entry decodes to [None] instead of a
    wrong value (and {!Store} then evicts and recomputes it). *)

(** One named field. Bitsets are encoded as capacity plus the sorted
    member list. *)
type field =
  | Int of int
  | Str of string
  | Bits of { capacity : int; elements : int list }

type payload = (string * field) list

(** Canonical text encoding. Injective: [decode (encode p) = Some p]. *)
val encode : payload -> string

(** Parse an encoded payload. [None] on any malformed input: unknown field
    kind, arity error, out-of-range or unsorted bitset members, trailing
    garbage. Never raises. *)
val decode : string -> payload option

(** {1 Builders and accessors}

    [get_*] return [None] when the field is absent or has the wrong
    type — integration sites treat that as a failed verification. *)

(** [bits s] is the {!Bits} field for bitset [s]. *)
val bits : Bfly_graph.Bitset.t -> field

val get_int : payload -> string -> int option
val get_str : payload -> string -> string option

(** [get_bits p name ~capacity] rebuilds the named bitset, additionally
    checking that its stored capacity equals [capacity]. The result is a
    fresh set — callers may mutate it without corrupting the cache. *)
val get_bits : payload -> string -> capacity:int -> Bfly_graph.Bitset.t option
