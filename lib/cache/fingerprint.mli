(** Stable structural fingerprints (64-bit FNV-1a) for cache keys.

    A fingerprint is a running hash over a canonical byte stream: every
    combinator feeds a type tag plus the value's canonical encoding, so
    [int 3] and [string "3"] hash differently and concatenation ambiguity
    ([("ab","c")] vs [("a","bc")]) cannot collide. Graphs are hashed over
    their {e sorted} normalized edge list, so two structurally equal graphs
    ({!Bfly_graph.Graph.equal}) fingerprint identically no matter how they
    were built.

    The hash is stable across processes, platforms and OCaml versions — it
    never uses [Hashtbl.hash] or [Marshal] — which is what makes the
    on-disk store content-addressed rather than process-addressed. *)

type t
(** A running fingerprint. Immutable; every combinator returns a new one. *)

(** The empty-stream fingerprint (the FNV-1a offset basis). *)
val seed : t

(** Fold one integer (as its 64-bit two's-complement encoding). *)
val int : t -> int -> t

(** Fold a string, length-prefixed. *)
val string : t -> string -> t

(** Fold an integer array, length-prefixed. *)
val int_array : t -> int array -> t

(** Fold a bitset as its capacity plus backing words, absorbed at word
    granularity (the tail-zero invariant of {!Bfly_graph.Bitset} makes the
    words canonical for the set). O(capacity/63). *)
val bitset : t -> Bfly_graph.Bitset.t -> t

(** Fold a graph canonically: node count, edge count, then the normalized
    edge multiset in sorted order — read straight off the graph's own
    sorted edge list, one word-granularity absorption per endpoint: no
    copy, no re-sort. Structurally equal graphs fold to equal
    fingerprints. O(m). *)
val graph : t -> Bfly_graph.Graph.t -> t

(** 16-hex-digit rendering, e.g. ["cbf29ce484222325"]. *)
val to_hex : t -> string
