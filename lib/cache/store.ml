module Metrics = Bfly_obs.Metrics
module Span = Bfly_obs.Span

let c_hit = Metrics.counter "cache.hit"
let c_hit_mem = Metrics.counter "cache.hit.mem"
let c_hit_disk = Metrics.counter "cache.hit.disk"
let c_miss = Metrics.counter "cache.miss"
let c_evict = Metrics.counter "cache.evict"
let c_verify_fail = Metrics.counter "cache.verify_fail"

let mutex = Mutex.create ()
let lru = Lru.create ~capacity:0

let locked f =
  Mutex.lock mutex;
  (* keep the memory tier in sync with the (mutable) configured bound *)
  Metrics.add c_evict (Lru.set_capacity lru (Config.lru_capacity ()));
  let r = try f () with e -> Mutex.unlock mutex; raise e in
  Mutex.unlock mutex;
  r

(* Serve [payload] if it decodes and verifies; otherwise evict the entry
   from both tiers. [tier] is the hit counter to credit. *)
let serve ~key ~decode ~verify ~tier payload =
  match decode payload with
  | Some v when verify v ->
      Metrics.incr c_hit;
      Metrics.incr tier;
      Some v
  | _ ->
      Metrics.incr c_verify_fail;
      Metrics.incr c_evict;
      locked (fun () -> Lru.remove lru (Key.digest key));
      Disk.remove ~dir:(Config.dir ()) key;
      None

let lookup ~key ~decode ~verify =
  if not (Config.enabled ()) then None
  else
    Span.time ~name:"cache.lookup" @@ fun () ->
    let digest = Key.digest key in
    let mem = locked (fun () -> Lru.find lru digest) in
    let result =
      match mem with
      | Some payload -> serve ~key ~decode ~verify ~tier:c_hit_mem payload
      | None -> (
          match Disk.load ~dir:(Config.dir ()) key with
          | Disk.Hit payload -> (
              match serve ~key ~decode ~verify ~tier:c_hit_disk payload with
              | Some v ->
                  locked (fun () ->
                      Metrics.add c_evict (Lru.add lru digest payload));
                  Some v
              | None -> None)
          | Disk.Corrupt ->
              Metrics.incr c_verify_fail;
              Metrics.incr c_evict;
              Disk.remove ~dir:(Config.dir ()) key;
              None
          | Disk.Miss -> None)
    in
    (match result with None -> Metrics.incr c_miss | Some _ -> ());
    result

let put ~key ~encode v =
  if Config.enabled () then
    Span.time ~name:"cache.store" @@ fun () ->
    let payload = encode v in
    Disk.store ~dir:(Config.dir ()) key payload;
    locked (fun () ->
        Metrics.add c_evict (Lru.add lru (Key.digest key) payload))

let memoize ~key ~encode ~decode ~verify ~compute =
  match lookup ~key ~decode ~verify with
  | Some v -> v
  | None ->
      let v = compute () in
      put ~key ~encode v;
      v

let drop ~key =
  locked (fun () -> Lru.remove lru (Key.digest key));
  Disk.remove ~dir:(Config.dir ()) key

let sweep_tmp ?max_age_s () = Disk.sweep_tmp ?max_age_s ~dir:(Config.dir ()) ()

let reset_memory () = locked (fun () -> Lru.clear lru)
let memory_length () = locked (fun () -> Lru.length lru)

let clear () =
  reset_memory ();
  Disk.clear ~dir:(Config.dir ())

type stats = {
  enabled : bool;
  dir : string;
  memory_entries : int;
  memory_capacity : int;
  disk : Disk.stats;
  solvers : (string * int) list;
}

let stats () =
  let dir = Config.dir () in
  {
    enabled = Config.enabled ();
    dir;
    memory_entries = memory_length ();
    memory_capacity = Config.lru_capacity ();
    disk = Disk.stats ~dir;
    solvers = Disk.solvers ~dir;
  }
