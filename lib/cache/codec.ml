module Bitset = Bfly_graph.Bitset

type field =
  | Int of int
  | Str of string
  | Bits of { capacity : int; elements : int list }

type payload = (string * field) list

let valid_name n =
  n <> ""
  && String.for_all
       (fun c ->
         match c with
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' | '-' -> true
         | _ -> false)
       n

let encode p =
  let buf = Buffer.create 256 in
  List.iter
    (fun (name, field) ->
      if not (valid_name name) then
        invalid_arg ("Codec.encode: bad field name " ^ name);
      match field with
      | Int v -> Buffer.add_string buf (Printf.sprintf "i %s %d\n" name v)
      | Str s ->
          Buffer.add_string buf
            (Printf.sprintf "s %s %d\n" name (String.length s));
          Buffer.add_string buf s;
          Buffer.add_char buf '\n'
      | Bits { capacity; elements } ->
          Buffer.add_string buf
            (Printf.sprintf "b %s %d %d" name capacity (List.length elements));
          List.iter (fun e -> Buffer.add_string buf (" " ^ string_of_int e)) elements;
          Buffer.add_char buf '\n')
    p;
  Buffer.contents buf

exception Malformed

let decode s =
  let len = String.length s in
  let pos = ref 0 in
  let line () =
    (* next newline-terminated line; a last line without '\n' is malformed *)
    match String.index_from_opt s !pos '\n' with
    | None -> raise Malformed
    | Some nl ->
        let l = String.sub s !pos (nl - !pos) in
        pos := nl + 1;
        l
  in
  let parse_int str = match int_of_string_opt str with
    | Some v -> v
    | None -> raise Malformed
  in
  let fields = ref [] in
  (* "b" records carry one token per set member, so they are parsed with a
     cursor instead of [String.split_on_char]: token boundaries are
     identical (maximal runs between single spaces; an empty run is a token
     and fails the integer parse just as it used to), but no token list is
     materialized and all-digit tokens parse without a substring. *)
  let tok_end l p =
    match String.index_from_opt l p ' ' with
    | Some e -> e
    | None -> String.length l
  in
  let parse_tok l p e =
    (* = [parse_int (String.sub l p (e - p))]; <= 18 digits cannot
       overflow a 63-bit int, longer or non-decimal tokens take the
       substring path so exotic forms keep their [int_of_string] meaning *)
    let n = e - p in
    if n > 0 && n <= 18 then begin
      let v = ref 0 and ok = ref true in
      for i = p to e - 1 do
        let d = Char.code (String.unsafe_get l i) - Char.code '0' in
        if d < 0 || d > 9 then ok := false else v := (10 * !v) + d
      done;
      if !ok then !v else parse_int (String.sub l p n)
    end
    else parse_int (String.sub l p n)
  in
  let parse_bits l =
    let llen = String.length l in
    let p = 2 in
    let e = tok_end l p in
    let name = String.sub l p (e - p) in
    if not (valid_name name) || e >= llen then raise Malformed;
    let p = e + 1 in
    let e = tok_end l p in
    let capacity = parse_tok l p e in
    if e >= llen then raise Malformed;
    let p = e + 1 in
    let e = tok_end l p in
    let count = parse_tok l p e in
    if capacity < 0 then raise Malformed;
    (* members strictly increasing and in range: the canonical form *)
    let elements = ref [] in
    let seen = ref 0 in
    let prev = ref (-1) in
    let p = ref e in
    while !p < llen do
      let q = !p + 1 in
      let e = tok_end l q in
      let v = parse_tok l q e in
      if v <= !prev || v >= capacity then raise Malformed;
      prev := v;
      incr seen;
      elements := v :: !elements;
      p := e
    done;
    if count <> !seen then raise Malformed;
    (name, Bits { capacity; elements = List.rev !elements })
  in
  try
    while !pos < len do
      let l = line () in
      if String.length l >= 2 && l.[0] = 'b' && l.[1] = ' ' then
        fields := parse_bits l :: !fields
      else
        match String.split_on_char ' ' l with
        | [ "i"; name; v ] when valid_name name ->
            fields := (name, Int (parse_int v)) :: !fields
        | [ "s"; name; n ] when valid_name name ->
            let n = parse_int n in
            if n < 0 || !pos + n + 1 > len then raise Malformed;
            let str = String.sub s !pos n in
            if s.[!pos + n] <> '\n' then raise Malformed;
            pos := !pos + n + 1;
            fields := (name, Str str) :: !fields
        | _ -> raise Malformed
    done;
    Some (List.rev !fields)
  with Malformed -> None

let bits s =
  Bits { capacity = Bitset.capacity s; elements = Bitset.elements s }

let get_int p name =
  match List.assoc_opt name p with Some (Int v) -> Some v | _ -> None

let get_str p name =
  match List.assoc_opt name p with Some (Str s) -> Some s | _ -> None

let get_bits p name ~capacity =
  match List.assoc_opt name p with
  | Some (Bits { capacity = c; elements }) when c = capacity ->
      let s = Bitset.create capacity in
      List.iter (Bitset.add s) elements;
      Some s
  | _ -> None
