module Bitset = Bfly_graph.Bitset

type field =
  | Int of int
  | Str of string
  | Bits of { capacity : int; elements : int list }

type payload = (string * field) list

let valid_name n =
  n <> ""
  && String.for_all
       (fun c ->
         match c with
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' | '-' -> true
         | _ -> false)
       n

let encode p =
  let buf = Buffer.create 256 in
  List.iter
    (fun (name, field) ->
      if not (valid_name name) then
        invalid_arg ("Codec.encode: bad field name " ^ name);
      match field with
      | Int v -> Buffer.add_string buf (Printf.sprintf "i %s %d\n" name v)
      | Str s ->
          Buffer.add_string buf
            (Printf.sprintf "s %s %d\n" name (String.length s));
          Buffer.add_string buf s;
          Buffer.add_char buf '\n'
      | Bits { capacity; elements } ->
          Buffer.add_string buf
            (Printf.sprintf "b %s %d %d" name capacity (List.length elements));
          List.iter (fun e -> Buffer.add_string buf (" " ^ string_of_int e)) elements;
          Buffer.add_char buf '\n')
    p;
  Buffer.contents buf

exception Malformed

let decode s =
  let len = String.length s in
  let pos = ref 0 in
  let line () =
    (* next newline-terminated line; a last line without '\n' is malformed *)
    match String.index_from_opt s !pos '\n' with
    | None -> raise Malformed
    | Some nl ->
        let l = String.sub s !pos (nl - !pos) in
        pos := nl + 1;
        l
  in
  let parse_int str = match int_of_string_opt str with
    | Some v -> v
    | None -> raise Malformed
  in
  let fields = ref [] in
  try
    while !pos < len do
      let l = line () in
      match String.split_on_char ' ' l with
      | [ "i"; name; v ] when valid_name name ->
          fields := (name, Int (parse_int v)) :: !fields
      | [ "s"; name; n ] when valid_name name ->
          let n = parse_int n in
          if n < 0 || !pos + n + 1 > len then raise Malformed;
          let str = String.sub s !pos n in
          if s.[!pos + n] <> '\n' then raise Malformed;
          pos := !pos + n + 1;
          fields := (name, Str str) :: !fields
      | "b" :: name :: capacity :: count :: elts when valid_name name ->
          let capacity = parse_int capacity in
          let count = parse_int count in
          if capacity < 0 || count <> List.length elts then raise Malformed;
          let elements = List.map parse_int elts in
          (* members strictly increasing and in range: the canonical form *)
          let rec check prev = function
            | [] -> ()
            | e :: rest ->
                if e <= prev || e >= capacity then raise Malformed;
                check e rest
          in
          check (-1) elements;
          fields := (name, Bits { capacity; elements }) :: !fields
      | _ -> raise Malformed
    done;
    Some (List.rev !fields)
  with Malformed -> None

let bits s =
  Bits { capacity = Bitset.capacity s; elements = Bitset.elements s }

let get_int p name =
  match List.assoc_opt name p with Some (Int v) -> Some v | _ -> None

let get_str p name =
  match List.assoc_opt name p with Some (Str s) -> Some s | _ -> None

let get_bits p name ~capacity =
  match List.assoc_opt name p with
  | Some (Bits { capacity = c; elements }) when c = capacity ->
      let s = Bitset.create capacity in
      List.iter (Bitset.add s) elements;
      Some s
  | _ -> None
