(** Runtime configuration of the result cache.

    The cache is configured from the environment on first use and can be
    overridden programmatically (the [bfly_tool --no-cache] flag, tests):

    - [BFLY_CACHE=off] disables the cache entirely — every lookup misses
      without touching memory or disk, and nothing is stored.
    - [BFLY_CACHE_DIR=path] relocates the on-disk store (default
      [_bfly_cache/], relative to the working directory).
    - [BFLY_CACHE_LRU=k] caps the in-memory tier at [k] entries
      (default 512; [0] keeps only the disk tier).

    All accessors are safe to call from any domain; configuration writes
    are meant for process setup (CLI flag parsing, test fixtures), not for
    concurrent mutation mid-search. *)

(** Whether the cache is active. [false] when [BFLY_CACHE=off] (case
    insensitive; [0], [no] and [false] are also honoured) or after
    {!set_enabled}[ false]. *)
val enabled : unit -> bool

(** Force the cache on or off for the rest of the process (overrides the
    environment until {!reload}). *)
val set_enabled : bool -> unit

(** The on-disk store directory: [BFLY_CACHE_DIR], else [_bfly_cache]. The
    directory is created lazily on the first store. *)
val dir : unit -> string

(** Override the store directory (tests point this at a temp dir). *)
val set_dir : string -> unit

(** Capacity of the in-memory LRU tier, in entries. *)
val lru_capacity : unit -> int

(** Override the LRU capacity. Takes effect on the next store operation;
    shrinking evicts immediately via {!Store}. *)
val set_lru_capacity : int -> unit

(** Drop every programmatic override and re-read the environment. Tests
    call this after [Unix.putenv] to exercise the env-driven paths. *)
val reload : unit -> unit
