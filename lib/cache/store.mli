(** The cache front door: verified lookup, store, and maintenance.

    Two tiers — an in-memory {!Lru} over the on-disk {!Disk} store — behind
    one process-global, mutex-serialized entry point. The design rule is
    {e verify-on-hit}: a cached entry is only ever served after the
    caller's [verify] function has re-validated its witness from first
    principles (recounted cut capacity, re-measured expansion, re-evaluated
    closed form — the same checks [Bfly_check.Invariants] applies to live
    solver output). An entry that fails decoding or verification is
    evicted from both tiers and transparently recomputed; a corrupted or
    stale store can cost time, never correctness.

    Metrics (in {!Bfly_obs.Metrics}): counters [cache.hit] (with
    [cache.hit.mem] / [cache.hit.disk] breakdown), [cache.miss],
    [cache.evict] (LRU evictions plus bad-entry removals),
    [cache.verify_fail]; timers [cache.lookup] and [cache.store]. Lookups
    against a disabled cache ({!Config.enabled} [= false]) count nothing
    and touch nothing. *)

(** [lookup ~key ~decode ~verify] serves a verified entry, or [None] on
    miss (counting [cache.miss]). [decode] rebuilds the typed result from
    a payload; [verify] must re-validate it from first principles. A
    decode or verify failure evicts the entry and returns [None]. *)
val lookup :
  key:Key.t ->
  decode:(Codec.payload -> 'a option) ->
  verify:('a -> bool) ->
  'a option

(** [put ~key ~encode v] stores a freshly computed result in both tiers.
    No-op when the cache is disabled. *)
val put : key:Key.t -> encode:('a -> Codec.payload) -> 'a -> unit

(** [memoize ~key ~encode ~decode ~verify ~compute] — {!lookup}, falling
    back to [compute] + {!put} on a miss. The common integration shape:
    solvers wrap their body in one [memoize] call. *)
val memoize :
  key:Key.t ->
  encode:('a -> Codec.payload) ->
  decode:(Codec.payload -> 'a option) ->
  verify:('a -> bool) ->
  compute:(unit -> 'a) ->
  'a

(** [drop ~key] removes one entry from both tiers (used e.g. to retire a
    branch-and-bound checkpoint once its search completes). *)
val drop : key:Key.t -> unit

(** {1 Maintenance} *)

(** [sweep_tmp ?max_age_s ()] sweeps orphaned temp files from the
    configured cache directory (see {!Disk.sweep_tmp}); returns how many
    were removed. *)
val sweep_tmp : ?max_age_s:float -> unit -> int

(** Drop the in-memory tier (tests; also used after [cache clear]). *)
val reset_memory : unit -> unit

(** Number of entries currently in the in-memory tier. *)
val memory_length : unit -> int

(** Delete every on-disk entry and drop the memory tier; returns the
    number of files removed. *)
val clear : unit -> int

type stats = {
  enabled : bool;
  dir : string;
  memory_entries : int;
  memory_capacity : int;
  disk : Disk.stats;
  solvers : (string * int) list;  (** per-solver on-disk entry counts *)
}

(** A point-in-time view of both tiers and the active configuration. *)
val stats : unit -> stats
