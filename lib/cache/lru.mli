(** Bounded in-memory LRU of decoded cache payloads.

    The memory tier in front of {!Disk}: recently served entries skip the
    filesystem (and its re-parse) entirely. Keys are entry digests;
    values are {!Codec.payload}s, which are immutable — integration sites
    rebuild fresh witnesses from them on every hit, so shared storage here
    can never be mutated by a caller.

    Exact LRU via an intrusive doubly-linked list: [find], [add] and
    [remove] are O(1). Not synchronized — {!Store} serializes access. *)

type t

(** [create ~capacity] — an empty LRU holding at most [capacity] entries.
    [capacity = 0] makes every operation a no-op. *)
val create : capacity:int -> t

(** [find t digest] returns the payload and marks it most recently used. *)
val find : t -> string -> Codec.payload option

(** [add t digest payload] inserts (or refreshes) the entry and returns
    how many entries were evicted to make room (0 or 1; more after
    {!set_capacity} shrinks). *)
val add : t -> string -> Codec.payload -> int

(** Remove one entry if present (used when a hit fails verification). *)
val remove : t -> string -> unit

(** Number of live entries. *)
val length : t -> int

(** Drop every entry. *)
val clear : t -> unit

(** [set_capacity t k] rebounds the LRU, evicting least-recent entries
    down to the new capacity; returns the number evicted. *)
val set_capacity : t -> int -> int
