type load_result = Hit of Codec.payload | Miss | Corrupt

let magic = "bfly-cache/1"

let checksum s = Fingerprint.(to_hex (string seed s))

let path ~dir key = Filename.concat dir (Key.filename key)

let read_file file =
  try Some (In_channel.with_open_bin file In_channel.input_all)
  with Sys_error _ -> None

let load ~dir key =
  let file = path ~dir key in
  if not (Sys.file_exists file) then Miss
  else
    match read_file file with
    | None -> Miss
    | Some contents -> (
        (* header line, key line, payload *)
        match String.index_opt contents '\n' with
        | None -> Corrupt
        | Some nl1 -> (
            let header = String.sub contents 0 nl1 in
            match String.index_from_opt contents (nl1 + 1) '\n' with
            | None -> Corrupt
            | Some nl2 -> (
                let key_line =
                  String.sub contents (nl1 + 1) (nl2 - nl1 - 1)
                in
                let payload =
                  String.sub contents (nl2 + 1)
                    (String.length contents - nl2 - 1)
                in
                match String.split_on_char ' ' header with
                | [ m; bytes; sum ]
                  when m = magic
                       && int_of_string_opt bytes
                          = Some (String.length payload)
                       && sum = checksum payload -> (
                    match
                      String.length key_line >= 4
                      && String.sub key_line 0 4 = "key "
                    with
                    | false -> Corrupt
                    | true ->
                        let desc =
                          String.sub key_line 4 (String.length key_line - 4)
                        in
                        if desc <> Key.description key then
                          (* digest collision: someone else's entry *)
                          Miss
                        else (
                          match Codec.decode payload with
                          | Some p -> Hit p
                          | None -> Corrupt))
                | _ -> Corrupt)))

let store ~dir key payload =
  try
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let body = Codec.encode payload in
    let contents =
      Printf.sprintf "%s %d %s\nkey %s\n%s" magic (String.length body)
        (checksum body) (Key.description key) body
    in
    let tmp =
      Filename.concat dir
        (Printf.sprintf ".%s.%d.tmp" (Key.digest key) (Unix.getpid ()))
    in
    Out_channel.with_open_bin tmp (fun oc -> Out_channel.output_string oc contents);
    Sys.rename tmp (path ~dir key)
  with Sys_error _ | Unix.Unix_error _ -> ()

let remove ~dir key =
  try if Sys.file_exists (path ~dir key) then Sys.remove (path ~dir key)
  with Sys_error _ -> ()

let entry_files dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> [||]
  | files ->
      Array.to_list files
      |> List.filter (fun f -> Filename.check_suffix f ".entry")
      |> List.sort compare |> Array.of_list

let clear ~dir =
  let files = entry_files dir in
  Array.fold_left
    (fun n f ->
      match Sys.remove (Filename.concat dir f) with
      | () -> n + 1
      | exception Sys_error _ -> n)
    0 files

type stats = { entries : int; bytes : int }

let stats ~dir =
  let files = entry_files dir in
  Array.fold_left
    (fun acc f ->
      let size =
        try (Unix.stat (Filename.concat dir f)).Unix.st_size
        with Unix.Unix_error _ | Sys_error _ -> 0
      in
      { entries = acc.entries + 1; bytes = acc.bytes + size })
    { entries = 0; bytes = 0 }
    files

let solvers ~dir =
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun f ->
      let base = Filename.chop_suffix f ".entry" in
      let solver =
        match String.rindex_opt base '-' with
        | Some i -> String.sub base 0 i
        | None -> base
      in
      Hashtbl.replace tbl solver
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl solver)))
    (entry_files dir);
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort compare
