module Fault = Bfly_resil.Fault

type load_result = Hit of Codec.payload | Miss | Corrupt

let magic = "bfly-cache/1"

let checksum s = Fingerprint.(to_hex (string seed s))

let path ~dir key = Filename.concat dir (Key.filename key)

let read_file file =
  try Some (In_channel.with_open_bin file In_channel.input_all)
  with Sys_error _ -> None

let load ~dir key =
  let file = path ~dir key in
  if not (Sys.file_exists file) then Miss
  else if Fault.fire Fault.Disk_io then Miss
  else
    match read_file file with
    | None -> Miss
    | Some contents -> (
        let contents =
          if Fault.fire Fault.Corrupt then Fault.corrupt contents else contents
        in
        (* header line, key line, payload *)
        match String.index_opt contents '\n' with
        | None -> Corrupt
        | Some nl1 -> (
            let header = String.sub contents 0 nl1 in
            match String.index_from_opt contents (nl1 + 1) '\n' with
            | None -> Corrupt
            | Some nl2 -> (
                let key_line =
                  String.sub contents (nl1 + 1) (nl2 - nl1 - 1)
                in
                let payload =
                  String.sub contents (nl2 + 1)
                    (String.length contents - nl2 - 1)
                in
                match String.split_on_char ' ' header with
                | [ m; bytes; sum ]
                  when m = magic
                       && int_of_string_opt bytes
                          = Some (String.length payload)
                       && sum = checksum payload -> (
                    match
                      String.length key_line >= 4
                      && String.sub key_line 0 4 = "key "
                    with
                    | false -> Corrupt
                    | true ->
                        let desc =
                          String.sub key_line 4 (String.length key_line - 4)
                        in
                        if desc <> Key.description key then
                          (* digest collision: someone else's entry *)
                          Miss
                        else (
                          match Codec.decode payload with
                          | Some p -> Hit p
                          | None -> Corrupt))
                | _ -> Corrupt)))

(* ---- orphaned temp files ----
   A crash between writing the temp file and renaming it — or a failing
   rename — would otherwise leak `.<digest>.<pid>.tmp` files forever. A
   failed rename cleans up its own temp file; temp files orphaned by a
   dead process are swept (age-gated, so live concurrent writers are left
   alone) the first time each directory is stored into, and on demand via
   [sweep_tmp]. *)

let c_tmp_swept = Bfly_obs.Metrics.counter "cache.tmp_swept"

let is_tmp_file f =
  String.length f > 0 && f.[0] = '.' && Filename.check_suffix f ".tmp"

let tmp_files dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | files -> List.filter is_tmp_file (Array.to_list files)

let sweep_tmp ?(max_age_s = 600.) ~dir () =
  let now = Unix.gettimeofday () in
  List.fold_left
    (fun n f ->
      let file = Filename.concat dir f in
      match Unix.stat file with
      | exception (Unix.Unix_error _ | Sys_error _) -> n
      | st ->
          if now -. st.Unix.st_mtime >= max_age_s then (
            match Sys.remove file with
            | () ->
                Bfly_obs.Metrics.incr c_tmp_swept;
                n + 1
            | exception Sys_error _ -> n)
          else n)
    0 (tmp_files dir)

let swept_dirs : (string, unit) Hashtbl.t = Hashtbl.create 4
let swept_lock = Mutex.create ()

let sweep_on_open dir =
  Mutex.lock swept_lock;
  let fresh = not (Hashtbl.mem swept_dirs dir) in
  if fresh then Hashtbl.replace swept_dirs dir ();
  Mutex.unlock swept_lock;
  if fresh then ignore (sweep_tmp ~dir ())

let store ~dir key payload =
  try
    if Fault.fire Fault.Disk_io then raise (Sys_error "injected disk fault");
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    sweep_on_open dir;
    let body = Codec.encode payload in
    let contents =
      Printf.sprintf "%s %d %s\nkey %s\n%s" magic (String.length body)
        (checksum body) (Key.description key) body
    in
    let tmp =
      Filename.concat dir
        (Printf.sprintf ".%s.%d.tmp" (Key.digest key) (Unix.getpid ()))
    in
    Out_channel.with_open_bin tmp (fun oc -> Out_channel.output_string oc contents);
    try Sys.rename tmp (path ~dir key)
    with e ->
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e
  with Sys_error _ | Unix.Unix_error _ -> ()

let remove ~dir key =
  try if Sys.file_exists (path ~dir key) then Sys.remove (path ~dir key)
  with Sys_error _ -> ()

let entry_files dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> [||]
  | files ->
      Array.to_list files
      |> List.filter (fun f -> Filename.check_suffix f ".entry")
      |> List.sort compare |> Array.of_list

let clear ~dir =
  let files = entry_files dir in
  Array.fold_left
    (fun n f ->
      match Sys.remove (Filename.concat dir f) with
      | () -> n + 1
      | exception Sys_error _ -> n)
    0 files

type stats = { entries : int; bytes : int; tmp : int }

let stats ~dir =
  let files = entry_files dir in
  Array.fold_left
    (fun acc f ->
      let size =
        try (Unix.stat (Filename.concat dir f)).Unix.st_size
        with Unix.Unix_error _ | Sys_error _ -> 0
      in
      { acc with entries = acc.entries + 1; bytes = acc.bytes + size })
    { entries = 0; bytes = 0; tmp = List.length (tmp_files dir) }
    files

let solvers ~dir =
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun f ->
      let base = Filename.chop_suffix f ".entry" in
      let solver =
        match String.rindex_opt base '-' with
        | Some i -> String.sub base 0 i
        | None -> base
      in
      Hashtbl.replace tbl solver
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl solver)))
    (entry_files dir);
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort compare
