(** The on-disk entry store: one self-checking file per cache entry.

    File layout (all text):
    {v
    bfly-cache/1 <payload-bytes> <payload-checksum-hex>
    key <full key description>
    <payload...>
    v}

    Reads validate the magic line, the byte count, the FNV-1a checksum and
    the embedded key description before the payload is even parsed; any
    mismatch is reported as {!Corrupt} (a description mismatch — a digest
    collision — as {!Miss}), never as data. Writes go through a temp file
    in the same directory followed by [Sys.rename], so concurrent readers
    only ever see complete entries and a crash cannot leave a torn one.

    All I/O failures are absorbed: a read error is a {!Miss}, a write
    error a no-op — the cache accelerates solvers, it must never take one
    down.

    Temp-file hygiene: a failed rename removes its own temp file, and
    temp files orphaned by a dead process are swept — age-gated, so
    concurrent live writers are untouched — the first time each directory
    is stored into, and on demand via {!sweep_tmp} (counter
    [cache.tmp_swept]).

    Chaos: when {!Bfly_resil.Fault} injection is armed, a [Disk_io] fault
    turns a load into a {!Miss} or a store into a no-op (simulated
    filesystem error), and a [Corrupt] fault mangles loaded bytes before
    parsing — which the checksum then catches, exercising the
    verify-and-evict path. *)

type load_result =
  | Hit of Codec.payload
  | Miss
  | Corrupt  (** present but unreadable: checksum, framing or parse error *)

(** [load ~dir key] reads and validates the entry for [key]. *)
val load : dir:string -> Key.t -> load_result

(** [store ~dir key payload] atomically (re)writes the entry, creating
    [dir] if needed. Best-effort: I/O errors are swallowed. *)
val store : dir:string -> Key.t -> Codec.payload -> unit

(** [remove ~dir key] deletes the entry if present. *)
val remove : dir:string -> Key.t -> unit

(** [clear ~dir] deletes every [*.entry] file; returns how many. *)
val clear : dir:string -> int

type stats = { entries : int; bytes : int; tmp : int }

(** Entry count, total size, and orphaned temp-file count of the store
    (all zero when the directory does not exist). *)
val stats : dir:string -> stats

(** [sweep_tmp ?max_age_s ~dir] removes temp files older than
    [max_age_s] seconds (default 600 — long enough that any live writer
    has long since renamed its file away) and returns how many were
    removed. *)
val sweep_tmp : ?max_age_s:float -> dir:string -> unit -> int

(** [solvers ~dir] is the per-solver entry count, sorted by solver id —
    parsed from the filenames, so it is O(entries) with no file reads. *)
val solvers : dir:string -> (string * int) list
