type t = { solver : string; digest : string; description : string }

let code_salt = "bfly-cache/2026-08-06.1"

let make ~solver ~salt ~params ~fingerprint =
  let params_str =
    String.concat "&"
      (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) params)
  in
  let fp_hex = Fingerprint.to_hex fingerprint in
  let description =
    Printf.sprintf "%s?%s&v=%s&c=%s#%s" solver params_str salt code_salt
      fp_hex
  in
  let digest =
    Fingerprint.(to_hex (string seed description))
  in
  { solver; digest; description }

let solver k = k.solver
let digest k = k.digest
let description k = k.description

let sanitize s =
  String.map (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
      | _ -> '_')
    s

let filename k = Printf.sprintf "%s-%s.entry" (sanitize k.solver) k.digest
