type t = { enabled : bool; dir : string; lru_capacity : int }

let default_dir = "_bfly_cache"
let default_lru = 512

let off_values = [ "off"; "0"; "no"; "false" ]

let from_env () =
  let enabled =
    match Sys.getenv_opt "BFLY_CACHE" with
    | Some v when List.mem (String.lowercase_ascii (String.trim v)) off_values
      ->
        false
    | _ -> true
  in
  let dir =
    match Sys.getenv_opt "BFLY_CACHE_DIR" with
    | Some d when String.trim d <> "" -> d
    | _ -> default_dir
  in
  let lru_capacity =
    match Sys.getenv_opt "BFLY_CACHE_LRU" with
    | Some v -> ( match int_of_string_opt (String.trim v) with
        | Some k when k >= 0 -> k
        | _ -> default_lru)
    | None -> default_lru
  in
  { enabled; dir; lru_capacity }

let state = ref None
let mutex = Mutex.create ()

let with_state f =
  Mutex.lock mutex;
  let cur = match !state with
    | Some s -> s
    | None ->
        let s = from_env () in
        state := Some s;
        s
  in
  let r = f cur in
  Mutex.unlock mutex;
  r

let update f = with_state (fun s -> state := Some (f s))

let enabled () = with_state (fun s -> s.enabled)
let set_enabled b = update (fun s -> { s with enabled = b })
let dir () = with_state (fun s -> s.dir)
let set_dir d = update (fun s -> { s with dir = d })
let lru_capacity () = with_state (fun s -> s.lru_capacity)
let set_lru_capacity k = update (fun s -> { s with lru_capacity = max 0 k })

let reload () =
  Mutex.lock mutex;
  state := Some (from_env ());
  Mutex.unlock mutex
