(** Cache keys: [(solver id, solver params, instance fingerprint, salts)]
    folded into one content-addressed digest.

    A key names a {e deterministic computation}, not a stored blob: two
    calls build the same key exactly when the solver, its parameters, the
    canonical instance fingerprint, the per-solver salt and the library's
    {!code_salt} all agree — and the solvers are deterministic in all of
    those (see ARCHITECTURE.md), so equal keys imply equal results.

    Digest collisions are guarded twice: the full human-readable
    {!description} is stored inside every disk entry and compared on load
    (a mismatch is treated as a miss), and every hit is re-verified against
    its witness before being served. *)

type t

(** The library-wide version salt, folded into every key. Bump it whenever
    a cached solver's semantics change so stale stores self-invalidate. *)
val code_salt : string

(** [make ~solver ~salt ~params ~fingerprint] builds a key.
    [solver] is the dotted call-site id (e.g. ["cuts.exact.bisection_width"]);
    [salt] versions that call site independently of {!code_salt};
    [params] are human-readable parameter pairs, order-significant;
    [fingerprint] canonically identifies the instance (graph, subset,
    derived seeds, …). *)
val make :
  solver:string ->
  salt:string ->
  params:(string * string) list ->
  fingerprint:Fingerprint.t ->
  t

(** The solver id the key was built with. *)
val solver : t -> string

(** 16-hex-digit digest over every component of the key. *)
val digest : t -> string

(** Canonical one-line rendering of the full key, e.g.
    ["cuts.exact.bisection_width?restarts=4&v=exact/1&c=2026-08-06.1#<fp>"].
    Stored inside disk entries to detect digest collisions. *)
val description : t -> string

(** The entry's base filename: sanitized solver id + digest +
    [".entry"]. *)
val filename : t -> string
