(* Command-line interface to the butterfly-networks library.

   bfly_tool info      <network> <n>       structural summary
   bfly_tool bisect    <network> <n>       bisection-width bracket
   bfly_tool bw        <solver> ...        individual bisection solvers
                       (accepts --graph SPEC for mesh:/torus:/torus3d:/
                        bcube:/product: data-center fabrics)
   bfly_tool expansion <network> <n> -k K  expansion values
   bfly_tool render    <network> <n>       ASCII / DOT rendering
   bfly_tool route     <n>                 greedy routing simulation
   bfly_tool serve                         batch query service (NDJSON)
   bfly_tool loadgen --trace FILE          deterministic load replay + gate
   bfly_tool experiments [IDS]             reproduce the paper's tables

   The solver subcommands (bw, expansion, mos) execute through
   Bfly_serve.Job — the same code path `bfly_tool serve` schedules — so a
   served response's "output" field is byte-identical to the one-shot
   subcommand's stdout by construction. *)

open Cmdliner
module G = Bfly_graph.Graph
module B = Bfly_networks.Butterfly
module Budget = Bfly_resil.Budget
module Cancel = Bfly_resil.Cancel
module Job = Bfly_serve.Job

let network_conv =
  let parse s = Result.map_error (fun m -> `Msg m) (Job.net_of_string s) in
  let print ppf net = Format.pp_print_string ppf (Job.net_name net) in
  Arg.conv (parse, print)

let log2_exact n =
  let rec go l v = if v = n then Some l else if v > n then None else go (l + 1) (2 * v) in
  if n < 1 then None else go 0 1

let graph_of = Job.graph_of

let net_arg =
  Arg.(required & pos 0 (some network_conv) None & info [] ~docv:"NETWORK")

let n_arg = Arg.(required & pos 1 (some int) None & info [] ~docv:"N")

(* ---- --graph (product-network fabrics) ---- *)

(* The bw subcommands accept either the classic positional pair
   (NETWORK N) or [--graph SPEC] naming a data-center fabric whose spec
   already fixes the size; [n] is pinned to 0 for fabrics so their job
   fingerprints are canonical. A fabric spec is also accepted positionally
   (with N omitted). *)

let fabric_conv =
  let parse s =
    match Bfly_networks.Fabric.spec_of_string s with
    | Ok spec -> Ok (Job.Fabric spec)
    | Error m -> Error (`Msg m)
  in
  let print ppf net = Format.pp_print_string ppf (Job.net_name net) in
  Arg.conv (parse, print)

let graph_arg =
  Arg.(
    value
    & opt (some fabric_conv) None
    & info [ "graph" ] ~docv:"SPEC"
        ~doc:
          "Solve on a product-network fabric instead of a butterfly family: \
           $(b,mesh:2x4x8), $(b,torus:4x4x4) (alias $(b,torus3d:)), \
           $(b,bcube:PORTSxLEVELS), or $(b,product:path2xring3xk4). \
           Replaces the positional NETWORK and N arguments.")

let net_opt_arg =
  Arg.(value & pos 0 (some network_conv) None & info [] ~docv:"NETWORK")

let n_opt_arg = Arg.(value & pos 1 (some int) None & info [] ~docv:"N")

let resolve_instance graph net n =
  match (graph, net, n) with
  | Some fabric, None, None -> Ok (fabric, 0)
  | Some _, Some _, _ | Some _, _, Some _ ->
      Error "--graph replaces the positional NETWORK and N arguments"
  | None, Some (Job.Fabric _ as fabric), None -> Ok (fabric, 0)
  | None, Some (Job.Fabric _), Some _ ->
      Error "omit N for fabric specs (the spec fixes the size)"
  | None, Some net, Some n -> Ok (net, n)
  | None, Some _, None -> Error "missing N (required for butterfly families)"
  | None, None, _ -> Error "specify NETWORK N or --graph SPEC"

let handle = function
  | Ok () -> 0
  | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      1

(* ---- --metrics ---- *)

(* Every subcommand accepts [--metrics]: after the subcommand's own output,
   dump the Bfly_obs counters/gauges/timers the kernels recorded, as one
   JSON line on stdout. *)

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "After the subcommand finishes, print the collected Bfly_obs \
           metrics (counters, gauges, timer spans) as a single JSON line.")

let finishing metrics code =
  if metrics then print_endline (Bfly_obs.Metrics.to_json_string ());
  code

(* ---- --no-cache ---- *)

(* Solver subcommands accept [--no-cache]: disable the persistent result
   cache for this run only (same effect as BFLY_CACHE=off). *)

let no_cache_arg =
  Arg.(
    value & flag
    & info [ "no-cache" ]
        ~doc:
          "Disable the persistent result cache for this run (equivalent to \
           setting BFLY_CACHE=off). Every solver recomputes from scratch \
           and stores nothing.")

let set_cache no_cache = if no_cache then Bfly_cache.Config.set_enabled false

(* ---- --deadline ---- *)

(* Solver subcommands accept [--deadline]: install an ambient
   Bfly_resil.Cancel token for the duration of the run, so every
   cooperating solver on the call chain (heuristics, MOS pullback sweep,
   supervised exact search) degrades gracefully when it fires. *)

let budget_conv =
  let parse s =
    match Budget.of_string s with Ok b -> Ok b | Error e -> Error (`Msg e)
  in
  let print ppf b = Format.pp_print_string ppf (Budget.to_string b) in
  Arg.conv (parse, print)

let deadline_arg =
  Arg.(
    value
    & opt (some budget_conv) None
    & info [ "deadline" ] ~docv:"DURATION"
        ~doc:
          "Wall-clock budget for this run (e.g. 250ms, 1.5s, 2m; a bare \
           number means seconds). When it expires, cooperating solvers stop \
           refining and return their best certified result so far instead \
           of running to completion.")

let supervised deadline f =
  match deadline with
  | None -> f ()
  | Some budget -> Cancel.with_ambient (Cancel.create ~budget ()) f

(* The one-shot solver subcommands print exactly what Job.run returns, so
   `bfly_tool serve` responses match them byte for byte. *)
let run_job ?deadline spec =
  match Job.run ?deadline spec with
  | Ok out ->
      print_string out;
      Ok ()
  | Error e -> Error e

(* ---- info ---- *)

let info_run metrics net n =
  finishing metrics @@
  handle
    (match graph_of net n with
    | Error e -> Error e
    | Ok (g, name) ->
        Printf.printf "%s: %d nodes, %d edges, max degree %d, diameter %d\n"
          name (G.n_nodes g) (G.n_edges g) (G.max_degree g)
          (Bfly_graph.Traverse.diameter g);
        let h = G.degree_histogram g in
        Array.iteri
          (fun d c -> if c > 0 then Printf.printf "  degree %d: %d nodes\n" d c)
          h;
        Ok ())

let info_cmd =
  Cmd.v
    (Cmd.info "info" ~doc:"Structural summary of a network")
    Term.(const info_run $ metrics_arg $ net_arg $ n_arg)

(* ---- bisect ---- *)

let bisect_run metrics no_cache deadline net n dot =
  set_cache no_cache;
  finishing metrics @@
  handle @@
  supervised deadline @@ fun () ->
    (if Job.is_fabric net then
       Error
         "bisect covers the butterfly families; use 'bw ml --graph SPEC' \
          (heuristic) or 'bw exact --graph SPEC' for fabrics"
     else
     match log2_exact n with
    | None -> Error "n must be a power of two"
    | Some _ -> (
        let bracket =
          match net with
          | Job.Butterfly -> Ok (Bfly_core.Bw.butterfly ~use_heuristics:(n <= 64) n)
          | Job.Wrapped -> if n >= 4 then Ok (Bfly_core.Bw.wrapped n) else Error "n >= 4"
          | Job.Ccc ->
              if n >= 4 then Ok (Bfly_core.Bw.ccc n) else Error "n >= 4"
          | Job.Fabric _ -> assert false
        in
        match bracket with
        | Error e -> Error e
        | Ok br ->
            Format.printf "%a@." Bfly_core.Bw.pp br;
            (match dot with
            | None -> ()
            | Some file ->
                let g, _ = Result.get_ok (graph_of net n) in
                Bfly_graph.Dot.write ~side:br.Bfly_core.Bw.witness file g;
                Printf.printf "wrote cut rendering to %s\n" file);
            Ok ()))

let bisect_cmd =
  let dot =
    Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"FILE"
           ~doc:"Write a Graphviz rendering of the witness cut.")
  in
  Cmd.v
    (Cmd.info "bisect" ~doc:"Bisection-width bracket (Theorem 2.20, Lemmas 3.2, 3.3)")
    Term.(
      const bisect_run $ metrics_arg $ no_cache_arg $ deadline_arg $ net_arg
      $ n_arg $ dot)

(* ---- expansion ---- *)

let expansion_run metrics no_cache deadline net n k exact only seed =
  set_cache no_cache;
  finishing metrics @@
  handle
    (match
       match only with
       | None -> Ok `Both
       | Some "ee" -> Ok `Ee
       | Some "ne" -> Ok `Ne
       | Some other ->
           Error (Printf.sprintf "--only must be ee or ne, not %s" other)
     with
    | Error e -> Error e
    | Ok kind ->
        run_job ?deadline
          (Job.Expansion { kind; net; n; k; exact; seed }))

let expansion_cmd =
  let k = Arg.(required & opt (some int) None & info [ "k" ] ~docv:"K") in
  let exact =
    Arg.(value & flag & info [ "exact" ] ~doc:"Exact enumeration (small instances only).")
  in
  let only =
    Arg.(
      value
      & opt (some string) None
      & info [ "only" ] ~docv:"ee|ne"
          ~doc:"Print only the edge (ee) or node (ne) expansion line.")
  in
  let seed =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"RNG seed for the annealer (ignored with $(b,--exact)).")
  in
  Cmd.v
    (Cmd.info "expansion" ~doc:"Edge/node expansion (Section 4)")
    Term.(
      const expansion_run $ metrics_arg $ no_cache_arg $ deadline_arg
      $ net_arg $ n_arg $ k $ exact $ only $ seed)

(* ---- render ---- *)

let render_run metrics n dot =
  finishing metrics @@
  handle
    (match log2_exact n with
    | None -> Error "n must be a power of two"
    | Some log_n ->
        let b = B.create ~log_n in
        (match dot with
        | Some file ->
            Bfly_graph.Dot.write ~label:(B.label b) file (B.graph b);
            Printf.printf "wrote %s\n" file
        | None -> print_string (Bfly_networks.Render.butterfly_ascii b));
        Ok ())

let render_cmd =
  let n = Arg.(required & pos 0 (some int) None & info [] ~docv:"N") in
  let dot =
    Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"FILE")
  in
  Cmd.v
    (Cmd.info "render" ~doc:"Draw a butterfly (Figure 1)")
    Term.(const render_run $ metrics_arg $ n $ dot)

(* ---- route ---- *)

let route_run metrics n seed =
  finishing metrics @@
  handle
    (match log2_exact n with
    | None -> Error "n must be a power of two"
    | Some log_n ->
        let b = B.create ~log_n in
        let rng = Random.State.make [| seed |] in
        let paths = Bfly_routing.Workload.greedy_random ~rng b in
        let stats = Bfly_routing.Router.run (B.graph b) ~paths in
        Printf.printf
          "B_%d greedy routing, random destinations: %d packets in %d steps \
           (%d hops, max queue %d)\n"
          n stats.Bfly_routing.Router.delivered stats.Bfly_routing.Router.steps
          stats.Bfly_routing.Router.total_hops
          stats.Bfly_routing.Router.max_edge_queue;
        Ok ())

let route_cmd =
  let n = Arg.(required & pos 0 (some int) None & info [] ~docv:"N") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ]) in
  Cmd.v
    (Cmd.info "route" ~doc:"Greedy store-and-forward routing (Section 1.2)")
    Term.(const route_run $ metrics_arg $ n $ seed)

(* ---- mos ---- *)

let mos_run metrics no_cache deadline j =
  set_cache no_cache;
  finishing metrics @@ handle (run_job ?deadline (Job.Mos { j }))

let mos_cmd =
  let j = Arg.(required & pos 0 (some int) None & info [] ~docv:"J") in
  Cmd.v
    (Cmd.info "mos" ~doc:"Mesh-of-stars M2-bisection width (Lemmas 2.17-2.19)")
    Term.(const mos_run $ metrics_arg $ no_cache_arg $ deadline_arg $ j)

(* ---- iosep ---- *)

let iosep_run metrics n =
  finishing metrics @@
  handle
    (match log2_exact n with
    | None -> Error "n must be a power of two"
    | Some log_n ->
        let b = B.create ~log_n in
        let side = Bfly_cuts.Io_cut.column_cut b in
        let v = Bfly_cuts.Io_cut.directed_crossings b side in
        Printf.printf "column construction: %d directed crossings (n/2 = %d)\n"
          v (max 1 (n / 2));
        if n <= 8 then begin
          let exact, _ = Bfly_cuts.Io_cut.exact b in
          Printf.printf "exact (max-flow enumeration): %d\n" exact
        end;
        Ok ())

let iosep_cmd =
  let n = Arg.(required & pos 0 (some int) None & info [] ~docv:"N") in
  Cmd.v
    (Cmd.info "iosep"
       ~doc:"Directed input/output separation of B_n (Section 1.2)")
    Term.(const iosep_run $ metrics_arg $ n)

(* ---- layout ---- *)

let layout_run metrics n =
  finishing metrics @@
  handle
    (match log2_exact n with
    | None -> Error "n must be a power of two"
    | Some log_n ->
        let b = B.create ~log_n in
        let l = Bfly_networks.Layout.butterfly_grid b in
        let area = Bfly_networks.Layout.area l in
        let lb = if n >= 2 then Bfly_mos.Mos_analysis.butterfly_lower_bound n else 0 in
        Printf.printf
          "B_%d grid layout: %d x %d = %d (%.2f n^2); Thompson bound BW^2 >= \
           %d\n"
          n l.Bfly_networks.Layout.width l.Bfly_networks.Layout.height area
          (float_of_int area /. float_of_int (n * n))
          (Bfly_networks.Layout.thompson_lower_bound ~bw:lb);
        Ok ())

let layout_cmd =
  let n = Arg.(required & pos 0 (some int) None & info [] ~docv:"N") in
  Cmd.v
    (Cmd.info "layout" ~doc:"VLSI grid layout area of B_n (Sections 1.1-1.2)")
    Term.(const layout_run $ metrics_arg $ n)

(* ---- bw ---- *)

let bw_exact_run metrics no_cache graph net n deadline max_nodes resume =
  set_cache no_cache;
  finishing metrics @@
  handle
    (match resolve_instance graph net n with
    | Error e -> Error e
    | Ok (net, n) ->
        run_job ?deadline
          (Job.Bw
             {
               Job.solver = Job.Exact;
               net;
               n;
               seed = 1;
               restarts = 1;
               max_nodes;
               resume;
             }))

let bw_exact_cmd =
  let max_nodes =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-nodes" ] ~docv:"K"
          ~doc:
            "Step budget: stop after about $(docv) search nodes and return \
             a certified interval.")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Continue from the checkpoint a previous interrupted run stored \
             in the result cache, exploring only the remaining frontier. \
             The completed value is identical to an uninterrupted run's.")
  in
  Cmd.v
    (Cmd.info "exact"
       ~doc:
         "Exact bisection width under a budget: runs the supervised \
          branch-and-bound engine, which returns the exact value — or, if \
          the deadline or node budget fires first, a certified interval \
          [lower, upper] with a real witness cut achieving upper, plus a \
          checkpoint that $(b,--resume) continues from. Every result is \
          re-validated before being printed.")
    Term.(
      const bw_exact_run $ metrics_arg $ no_cache_arg $ graph_arg
      $ net_opt_arg $ n_opt_arg $ deadline_arg $ max_nodes $ resume)

let seed_arg =
  Arg.(
    value & opt int 1
    & info [ "seed" ] ~docv:"SEED"
        ~doc:"RNG seed for the heuristic's restarts (deterministic per seed).")

let restarts_arg =
  Arg.(
    value & opt int 4
    & info [ "restarts" ] ~docv:"R"
        ~doc:"Independent seeded restarts; the best cut found wins.")

let bw_heuristic_run solver metrics no_cache graph net n deadline seed restarts
    =
  set_cache no_cache;
  finishing metrics @@
  handle
    (match resolve_instance graph net n with
    | Error e -> Error e
    | Ok (net, n) ->
        run_job ?deadline
          (Job.Bw
             {
               Job.solver;
               net;
               n;
               seed;
               restarts;
               max_nodes = None;
               resume = false;
             }))

let bw_heuristic_cmd solver ~name ~doc =
  Cmd.v (Cmd.info name ~doc)
    Term.(
      const (bw_heuristic_run solver)
      $ metrics_arg $ no_cache_arg $ graph_arg $ net_opt_arg $ n_opt_arg
      $ deadline_arg $ seed_arg $ restarts_arg)

let bw_kl_cmd =
  bw_heuristic_cmd Job.Kl ~name:"kl"
    ~doc:"Kernighan-Lin heuristic upper bound on the bisection width"

let bw_fm_cmd =
  bw_heuristic_cmd Job.Fm ~name:"fm"
    ~doc:"Fiduccia-Mattheyses heuristic upper bound on the bisection width"

let bw_sa_cmd =
  bw_heuristic_cmd Job.Sa ~name:"sa"
    ~doc:"Simulated-annealing heuristic upper bound on the bisection width"

let bw_spectral_cmd =
  bw_heuristic_cmd Job.Spectral ~name:"spectral"
    ~doc:
      "Spectral (Fiedler-vector) heuristic upper bound on the bisection \
       width; deterministic, so --seed/--restarts are accepted but inert"

let bw_ml_cmd =
  bw_heuristic_cmd Job.Ml ~name:"ml"
    ~doc:
      "Multilevel heuristic upper bound on the bisection width: heavy-edge \
       matching coarsens the graph to a few dozen nodes, gain-bucket FM \
       refines each level under a balance constraint, and seeded restarts \
       run the V-cycle concurrently. Near-linear per restart, so it scales \
       to instances (n = 4096 and beyond) where the flat heuristics stop \
       converging."

let bw_cmd =
  Cmd.group
    (Cmd.info "bw"
       ~doc:
         "Bisection-width solvers with supervision (deadlines, budgets, \
          checkpoint/resume)")
    [ bw_exact_cmd; bw_kl_cmd; bw_fm_cmd; bw_sa_cmd; bw_spectral_cmd; bw_ml_cmd ]

(* ---- check ---- *)

let check_run metrics no_cache seed rounds smoke chaos =
  set_cache no_cache;
  finishing metrics @@
  if rounds < 1 then handle (Error "rounds must be >= 1")
  else begin
    let json, ok = Bfly_check.Run.execute ~chaos ~seed ~rounds ~smoke () in
    print_endline (Bfly_obs.Json.to_string json);
    if ok then 0 else 1
  end

let check_cmd =
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED"
           ~doc:"Root seed; fixes every instance and every solver RNG.")
  in
  let rounds =
    Arg.(value & opt int 50 & info [ "rounds" ] ~docv:"N"
           ~doc:"Fuzzing rounds (one random instance per round).")
  in
  let smoke =
    Arg.(value & flag & info [ "smoke" ]
           ~doc:"Cheap CI-gate subset: smallest families, at most 5 rounds.")
  in
  let chaos =
    Arg.(
      value & flag
      & info [ "chaos" ]
          ~doc:
            "Run the fuzzing stage under fault injection (seeded by \
             $(b,--seed)): random disk-I/O errors, cache-entry corruption, \
             worker-domain exceptions and deadline expiries. Oracle \
             verdicts must be unchanged and the domain pool must survive.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Differential oracle suite: cross-check every solver against \
             naive references and the paper's theorems on random and \
             structured instances; print a machine-readable summary, exit \
             non-zero on any discrepancy")
    Term.(
      const check_run $ metrics_arg $ no_cache_arg $ seed $ rounds $ smoke
      $ chaos)

(* ---- campaign ---- *)

let campaign_run metrics no_cache deadline degree sizes seeds restarts
    json_file compare_file =
  set_cache no_cache;
  finishing metrics @@
  handle
    (let ( let* ) = Result.bind in
     let* () =
       (* a deadline can cancel the sweep mid-grid; diffing a run that may
          abort against a committed baseline would report phantom drift *)
       if compare_file <> None && deadline <> None then
         Error "--compare cannot be combined with --deadline"
       else Ok ()
     in
     supervised deadline @@ fun () ->
     let* t = Bfly_check.Campaign.run ~restarts ~degree ~sizes ~seeds () in
     print_string (Bfly_check.Campaign.render t);
     let doc = Bfly_check.Campaign.to_json t in
     let* () =
       match json_file with
       | None -> Ok ()
       | Some file -> (
           try
             Ok
               (Out_channel.with_open_text file (fun oc ->
                    Printf.fprintf oc "%s\n" (Bfly_obs.Json.to_string doc)))
           with Sys_error e -> Error e)
     in
     let* () =
       match compare_file with
       | None -> Ok ()
       | Some file -> (
           let* baseline =
             try
               Bfly_obs.Json.of_string
                 (In_channel.with_open_text file In_channel.input_all)
             with Sys_error e -> Error e
           in
           match Bfly_check.Campaign.compare_docs ~baseline doc with
           | [] ->
               Printf.eprintf "campaign: no drift against %s\n" file;
               Ok ()
           | drifts ->
               Error
                 (Printf.sprintf "campaign drift against %s:\n  %s" file
                    (String.concat "\n  " drifts)))
     in
     if t.Bfly_check.Campaign.ok then Ok ()
     else Error "campaign statistical oracle failed")

let campaign_cmd =
  let degree =
    Arg.(
      value & opt int 3
      & info [ "degree" ] ~docv:"D"
          ~doc:
            "Degree of the random-regular family (default 3, the only \
             degree with pinned statistical windows).")
  in
  let sizes =
    Arg.(
      value
      & opt (list int) Bfly_check.Campaign.default_sizes
      & info [ "sizes" ] ~docv:"N,N,..."
          ~doc:"Comma-separated instance sizes (default 64..4096).")
  in
  let seeds =
    Arg.(
      value & opt int Bfly_check.Campaign.default_seeds
      & info [ "seeds" ] ~docv:"K"
          ~doc:"Seeds 1..K per size (default 20).")
  in
  let restarts =
    Arg.(
      value & opt int Bfly_check.Campaign.default_restarts
      & info [ "restarts" ] ~docv:"R"
          ~doc:"Multilevel V-cycle restarts per instance (default 4).")
  in
  let json_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Also write the bfly-campaign/1 document to $(docv).")
  in
  let compare_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "compare" ] ~docv:"FILE"
          ~doc:
            "Diff this run against a committed bfly-campaign/1 document; \
             any per-instance drift (the run may cover a sub-grid of the \
             baseline) exits non-zero.")
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:
         "Seeded random-regular bisection campaign: sweep a size x seed \
          grid, record [certified LB, multilevel, spectral] per instance, \
          aggregate cut/n convergence ratios, and judge them against the \
          literature windows (arXiv:2009.00598); exit non-zero on oracle \
          failure or baseline drift")
    Term.(
      const campaign_run $ metrics_arg $ no_cache_arg $ deadline_arg $ degree
      $ sizes $ seeds $ restarts $ json_out $ compare_file)

(* ---- cache ---- *)

let cache_stats_run metrics =
  finishing metrics @@
  (* stale tmp files (orphaned by crashed writers) are swept here too, so
     `cache stats` doubles as the manual cleanup entry point *)
  let swept = Bfly_cache.Store.sweep_tmp () in
  let s = Bfly_cache.Store.stats () in
  Printf.printf "cache %s, dir %s\n"
    (if s.Bfly_cache.Store.enabled then "enabled" else "disabled")
    s.Bfly_cache.Store.dir;
  Printf.printf "  memory: %d entries (capacity %d)\n" s.memory_entries
    s.memory_capacity;
  Printf.printf "  disk:   %d entries, %d bytes\n" s.disk.entries s.disk.bytes;
  Printf.printf "  tmp:    %d in-flight temp files (%d stale swept)\n"
    s.disk.tmp swept;
  List.iter
    (fun (solver, count) -> Printf.printf "    %-44s %d\n" solver count)
    s.solvers;
  0

let cache_stats_cmd =
  Cmd.v
    (Cmd.info "stats" ~doc:"Show result-cache configuration and contents")
    Term.(const cache_stats_run $ metrics_arg)

let cache_clear_run metrics =
  finishing metrics @@
  let dir = Bfly_cache.Config.dir () in
  let removed = Bfly_cache.Store.clear () in
  Printf.printf "removed %d cached entries from %s\n" removed dir;
  0

let cache_clear_cmd =
  Cmd.v
    (Cmd.info "clear" ~doc:"Delete every cached result (both tiers)")
    Term.(const cache_clear_run $ metrics_arg)

let cache_warm_run metrics max_n =
  finishing metrics @@
  if max_n < 2 then handle (Error "max-n must be >= 2")
  else if not (Bfly_cache.Config.enabled ()) then
    handle (Error "cache is disabled (BFLY_CACHE=off); nothing to warm")
  else begin
    let n = ref 2 in
    while !n <= max_n do
      let nn = !n in
      Printf.printf "warming n=%d...\n%!" nn;
      ignore (Bfly_core.Bw.butterfly ~use_heuristics:(nn <= 64) nn);
      if nn >= 4 then begin
        ignore (Bfly_core.Bw.wrapped nn);
        ignore (Bfly_core.Bw.ccc nn)
      end;
      ignore (Bfly_mos.Mos_analysis.bw_m2 nn);
      (match log2_exact nn with
      | Some log_n when log_n >= 2 ->
          ignore (Bfly_cuts.Constructions.best_mos_pullback (B.create ~log_n))
      | _ -> ());
      n := !n * 2
    done;
    let s = Bfly_cache.Store.stats () in
    Printf.printf "cache now holds %d on-disk entries in %s\n"
      s.Bfly_cache.Store.disk.entries s.Bfly_cache.Store.dir;
    0
  end

let cache_warm_cmd =
  let max_n =
    Arg.(
      value & opt int 8
      & info [ "max-n" ] ~docv:"N"
          ~doc:
            "Largest network size to precompute (inclusive); every power of \
             two from 2 up is warmed.")
  in
  Cmd.v
    (Cmd.info "warm"
       ~doc:
         "Precompute bisection brackets, MOS widths and pullback sweeps for \
          small networks so later runs start hot")
    Term.(const cache_warm_run $ metrics_arg $ max_n)

let cache_cmd =
  Cmd.group
    (Cmd.info "cache"
       ~doc:
         "Inspect and maintain the persistent result cache (see BFLY_CACHE, \
          BFLY_CACHE_DIR)")
    [ cache_stats_cmd; cache_clear_cmd; cache_warm_cmd ]

(* ---- serve ---- *)

let parse_host_port s =
  match String.rindex_opt s ':' with
  | None -> Error (Printf.sprintf "expected HOST:PORT, got %S" s)
  | Some i -> (
      let host = String.sub s 0 i in
      let port = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt port with
      | Some p when p >= 0 && p < 65536 ->
          Ok ((if host = "" then "127.0.0.1" else host), p)
      | _ -> Error (Printf.sprintf "invalid port in %S" s))

let serve_run metrics no_cache socket tcp port_file workers client_queue
    max_line queue =
  set_cache no_cache;
  finishing metrics @@
  handle
    (let bad name = function
       | Some q when q < 1 -> Some (name ^ " must be >= 1")
       | _ -> None
     in
     match
       List.find_map Fun.id
         [
           bad "queue" queue; bad "client-queue" client_queue;
           bad "workers" workers; bad "max-line" max_line;
         ]
     with
     | Some msg -> Error msg
     | None -> (
         let tcp_addr =
           match tcp with
           | None -> Ok None
           | Some s -> Result.map Option.some (parse_host_port s)
         in
         match tcp_addr with
         | Error e -> Error e
         | Ok tcp ->
             let server =
               Bfly_serve.Server.create ?queue_bound:queue
                 ?client_bound:client_queue ()
             in
             let stdio = socket = None && tcp = None in
             Bfly_serve.Transport.serve ?workers ?max_line ~stdio
               ?unix_path:socket ?tcp ?port_file server;
             Printf.eprintf "%s\n" (Bfly_serve.Server.summary server);
             Ok ()))

let serve_cmd =
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Listen on a Unix-domain socket at $(docv); any number of \
             clients may connect concurrently. May be combined with \
             $(b,--tcp). Without either, requests are served on \
             stdin/stdout.")
  in
  let tcp =
    Arg.(
      value
      & opt (some string) None
      & info [ "tcp" ] ~docv:"HOST:PORT"
          ~doc:
            "Listen for TCP clients on $(docv). Port 0 picks an ephemeral \
             port; the actual address goes to stderr and, with \
             $(b,--port-file), to a file.")
  in
  let port_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "port-file" ] ~docv:"PATH"
          ~doc:
            "Write the bound TCP address as one HOST:PORT line to $(docv) \
             once listening — how a supervisor or test harness finds an \
             ephemeral port.")
  in
  let workers =
    Arg.(
      value
      & opt (some int) None
      & info [ "workers" ] ~docv:"N"
          ~doc:
            "Solve up to $(docv) batches concurrently on the domain pool \
             (default: the configured domain count, see BFLY_DOMAINS). \
             Response bytes do not depend on this; 1 reproduces the \
             sequential loop.")
  in
  let client_queue =
    Arg.(
      value
      & opt (some int) None
      & info [ "client-queue" ] ~docv:"N"
          ~doc:
            "Per-client admission bound: at most $(docv) outstanding \
             requests per connection before that client — and only that \
             client — gets \"overloaded\" rejections. Defaults to \
             BFLY_SERVE_CLIENT_QUEUE, else to the global queue bound.")
  in
  let max_line =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-line" ] ~docv:"BYTES"
          ~doc:
            "Reject request lines longer than $(docv) bytes with a \
             structured error instead of buffering them (default 262144).")
  in
  let queue =
    Arg.(
      value
      & opt (some int) None
      & info [ "queue" ] ~docv:"N"
          ~doc:
            "Admission bound: at most $(docv) requests queued or in flight \
             (coalesced ones included); beyond it requests are rejected \
             with \"overloaded\". Defaults to BFLY_SERVE_QUEUE, else 128.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Batch query service: newline-delimited JSON requests in, one JSON \
          response line per request out, over stdio, a Unix socket and/or \
          TCP. Batches solve concurrently on the domain pool; duplicate \
          in-flight requests coalesce into one solve; each client's \
          responses arrive in its own request order, and each response's \
          output field is byte-identical to the matching one-shot \
          subcommand's stdout. SIGTERM/SIGINT drain gracefully: queued work \
          is answered, new work is rejected with \"draining\", then the \
          process exits and logs a summary line to stderr.")
    Term.(
      const serve_run $ metrics_arg $ no_cache_arg $ socket $ tcp $ port_file
      $ workers $ client_queue $ max_line $ queue)

(* ---- loadgen ---- *)

let loadgen_run metrics no_cache trace_file clients repeat seed qps workers
    sequential connect queue json_out compare_file slack no_timing =
  set_cache no_cache;
  finishing metrics @@
  handle
    (let ( let* ) = Result.bind in
     let* mode =
       match (sequential, connect) with
       | true, Some _ -> Error "--sequential and --connect are exclusive"
       | true, None -> Ok Bfly_serve.Loadgen.Sequential
       | false, None -> Ok Bfly_serve.Loadgen.Concurrent
       | false, Some s -> (
           match String.index_opt s ':' with
           | Some i when String.sub s 0 i = "unix" ->
               Ok
                 (Bfly_serve.Loadgen.Connect
                    (`Unix (String.sub s (i + 1) (String.length s - i - 1))))
           | Some i when String.sub s 0 i = "tcp" ->
               let* hp =
                 parse_host_port
                   (String.sub s (i + 1) (String.length s - i - 1))
               in
               Ok (Bfly_serve.Loadgen.Connect (`Tcp hp))
           | _ -> Error "expected --connect tcp:HOST:PORT or unix:PATH")
     in
     let* trace =
       try Ok (In_channel.with_open_text trace_file In_channel.input_lines)
       with Sys_error e -> Error e
     in
     let* doc =
       Bfly_serve.Loadgen.run ~seed ~clients ~repeat ~qps ?workers
         ?queue_bound:queue ~mode ~trace ()
     in
     let text = Bfly_obs.Json.to_string doc in
     (match json_out with
     | Some file -> Out_channel.with_open_text file (fun oc ->
           Printf.fprintf oc "%s\n" text)
     | None -> ());
     print_endline text;
     match compare_file with
     | None -> Ok ()
     | Some file -> (
         let* baseline =
           try
             Bfly_obs.Json.of_string
               (In_channel.with_open_text file In_channel.input_all)
           with Sys_error e -> Error e
         in
         match
           Bfly_serve.Loadgen.compare_docs ~slack ~timing:(not no_timing)
             ~baseline doc
         with
         | [] ->
             Printf.eprintf "loadgen: no drift against %s\n" file;
             Ok ()
         | drifts ->
             Error
               (Printf.sprintf "loadgen drift against %s:\n  %s" file
                  (String.concat "\n  " drifts))))

let loadgen_cmd =
  let trace =
    Arg.(
      required
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"NDJSON request trace to replay (one request per line).")
  in
  let clients =
    Arg.(
      value & opt int 4
      & info [ "clients" ] ~docv:"N" ~doc:"Simulated clients (default 4).")
  in
  let repeat =
    Arg.(
      value & opt int 10
      & info [ "repeat" ] ~docv:"N"
          ~doc:
            "Rounds over the trace; each round is a seeded permutation \
             (default 10).")
  in
  let seed =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"N"
          ~doc:
            "Schedule seed. The whole request schedule is a pure function \
             of (trace, seed, clients, repeat): same inputs, same replay.")
  in
  let qps =
    Arg.(
      value & opt float 0.
      & info [ "qps" ] ~docv:"RATE"
          ~doc:
            "Target request rate across all clients; 0 (the default) \
             issues requests as fast as possible.")
  in
  let workers =
    Arg.(
      value
      & opt (some int) None
      & info [ "workers" ] ~docv:"N"
          ~doc:
            "Concurrent batch executions for the in-process concurrent \
             mode (default: the configured domain count).")
  in
  let sequential =
    Arg.(
      value & flag
      & info [ "sequential" ]
          ~doc:
            "Replay in process, solving every batch inline — the baseline \
             the concurrent modes must match byte for byte.")
  in
  let connect =
    Arg.(
      value
      & opt (some string) None
      & info [ "connect" ] ~docv:"TARGET"
          ~doc:
            "Replay against a live server instead of in process: \
             $(b,tcp:HOST:PORT) or $(b,unix:PATH), one real connection per \
             client.")
  in
  let queue =
    Arg.(
      value
      & opt (some int) None
      & info [ "queue" ] ~docv:"N"
          ~doc:
            "Queue bound for the in-process server (default: above the \
             request count, so admission control stays out of the way; set \
             it low to measure overload behaviour).")
  in
  let json_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Also write the bfly-loadgen/1 document to $(docv).")
  in
  let compare_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "compare" ] ~docv:"FILE"
          ~doc:
            "Gate against a baseline bfly-loadgen/1 document: exit non-zero \
             on deterministic drift, or on p99/throughput beyond the slack \
             factor.")
  in
  let slack =
    Arg.(
      value & opt float 3.0
      & info [ "slack" ] ~docv:"FACTOR"
          ~doc:
            "Timing tolerance for --compare: fail when p99 exceeds the \
             baseline, or throughput falls below it, by more than $(docv)x \
             (default 3.0).")
  in
  let no_timing =
    Arg.(
      value & flag
      & info [ "no-timing" ]
          ~doc:
            "Compare only deterministic fields — for gating against a \
             baseline recorded on different hardware.")
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:
         "Replay a request trace at load, deterministically: a seeded \
          schedule spread over simulated clients, replayed in process \
          (sequentially or concurrently on the domain pool) or against a \
          live server over TCP or a Unix socket. Prints a bfly-loadgen/1 \
          JSON document separating deterministic replay facts (request \
          counts, output fingerprints) from timing (achieved QPS, \
          p50/p90/p99), and with --compare gates both against a baseline.")
    Term.(
      const loadgen_run $ metrics_arg $ no_cache_arg $ trace $ clients
      $ repeat $ seed $ qps $ workers $ sequential $ connect $ queue
      $ json_out $ compare_file $ slack $ no_timing)

(* ---- experiments ---- *)

(* C1 is registered here (and in bench/main.ml) rather than in
   Experiments.all: it lives in bfly_check, which depends on bfly_core *)
let all_experiments () =
  Bfly_core.Experiments.all @ [ ("C1", Bfly_check.Campaign.c1) ]

let experiments_run metrics no_cache ids =
  set_cache no_cache;
  finishing metrics @@
  let selected =
    match ids with
    | [] -> all_experiments ()
    | ids ->
        List.filter
          (fun (name, _) -> List.mem (String.lowercase_ascii name) (List.map String.lowercase_ascii ids))
          (all_experiments ())
  in
  if selected = [] then begin
    Printf.eprintf "no matching experiments; available: %s\n"
      (String.concat ", " (List.map fst (all_experiments ())));
    1
  end
  else begin
    List.iter
      (fun (name, f) -> Printf.printf "--- %s ---\n%s\n%!" name (f ()))
      selected;
    0
  end

let experiments_cmd =
  let ids = Arg.(value & pos_all string [] & info [] ~docv:"ID") in
  Cmd.v
    (Cmd.info "experiments" ~doc:"Reproduce the paper's tables (E1-E13, F1-F2)")
    Term.(const experiments_run $ metrics_arg $ no_cache_arg $ ids)

let () =
  let doc = "bisection width and expansion of butterfly networks" in
  exit
    (Cmd.eval'
       (Cmd.group
          (Cmd.info "bfly_tool" ~version:"1.0.0" ~doc)
          [
            info_cmd; bisect_cmd; bw_cmd; expansion_cmd; render_cmd;
            route_cmd; mos_cmd; iosep_cmd; layout_cmd; check_cmd;
            campaign_cmd; serve_cmd; loadgen_cmd; experiments_cmd; cache_cmd;
          ]))
