(* Benchmark harness: regenerates every table and figure of the paper
   (experiments E1-E13, F1-F2 of DESIGN.md), then times the library's
   computational kernels with Bechamel — one Test per experiment's kernel.

   Besides the human-readable tables, [--json FILE] writes one
   machine-readable document per run (reproduction outputs, per-kernel
   time estimates, and the Bfly_obs metrics the kernels recorded), so
   successive PRs accumulate a perf trajectory:

     dune exec bench/main.exe -- --json BENCH_$(date +%F).json

   [--smoke] shrinks the run (cheap experiments, short Bechamel quota) for
   use as a tier-1 CI gate; the JSON schema is identical.

   [--values FILE] writes a second, timing-free document holding only the
   deterministic experiment outputs — byte-identical between a cold-cache
   and warm-cache run of the same build, which ci.sh asserts with cmp.
   Each experiment object in the [--json] document also carries the
   cache.hit / cache.miss deltas it incurred, so a warm run is visibly
   warm in the trajectory.

   The [--json] document also embeds two deterministic regression anchors,
   both captured BEFORE the Bechamel stage (whose timing-dependent
   iteration counts pollute the process-wide cache counters):

   - "gate": the exact.bb.nodes / cache.hit / cache.miss counter totals
     after the reproduction + oracle stages — fixed for a fixed build,
     domain count and (fresh) cache state;
   - "check": the full differential-oracle summary
     (seed 42, 5 rounds, smoke subset), deterministic by construction.

   [--compare BASELINE.json] turns the harness into a CI gate: it re-runs
   the deterministic stages only (reproduction + oracle; Bechamel is
   skipped), diffs experiment outputs, gate counters and the check summary
   against the committed baseline document, and exits non-zero on any
   drift. Incompatible with --chaos / --deadline, which perturb the very
   quantities being compared.

   [--serve TRACE.ndjson] replays a newline-delimited request trace
   through an in-process Bfly_serve server (same engine as `bfly_tool
   serve`), printing one response line per request and a coalescing /
   latency summary on stderr. [--serve-workers N] runs the replay's
   batches concurrently on the domain pool (N > 0; responses are still
   printed in request order, and must be byte-identical to the
   sequential replay's). *)

open Bechamel
open Toolkit
module Butterfly = Bfly_networks.Butterfly
module Wrapped = Bfly_networks.Wrapped
module Benes = Bfly_networks.Benes
module Perm = Bfly_graph.Perm
module Json = Bfly_obs.Json
module Metrics = Bfly_obs.Metrics
module Span = Bfly_obs.Span

(* ---- command line ---- *)

let usage =
  "usage: main.exe [--json FILE] [--values FILE] [--smoke] [--deadline D] \
   [--chaos] [--compare BASELINE.json] [--serve TRACE.ndjson] \
   [--serve-workers N]"

let ( json_file,
      values_file,
      smoke,
      deadline,
      chaos,
      compare_file,
      serve_file,
      serve_workers ) =
  let json_file = ref None
  and values_file = ref None
  and smoke = ref false
  and deadline = ref None
  and chaos = ref false
  and compare_file = ref None
  and serve_file = ref None
  and serve_workers = ref 0 in
  let rec parse = function
    | [] -> ()
    | "--json" :: file :: rest ->
        json_file := Some file;
        parse rest
    | "--values" :: file :: rest ->
        values_file := Some file;
        parse rest
    | "--compare" :: file :: rest ->
        compare_file := Some file;
        parse rest
    | "--serve" :: file :: rest ->
        serve_file := Some file;
        parse rest
    | "--serve-workers" :: n :: rest -> (
        match int_of_string_opt n with
        | Some w when w >= 1 ->
            serve_workers := w;
            parse rest
        | _ ->
            Printf.eprintf "bad --serve-workers: %s\n%s\n" n usage;
            exit 2)
    | "--deadline" :: d :: rest -> (
        match Bfly_resil.Budget.of_string d with
        | Ok b ->
            deadline := Some b;
            parse rest
        | Error e ->
            Printf.eprintf "bad --deadline: %s\n%s\n" e usage;
            exit 2)
    | [ "--json" ] | [ "--values" ] | [ "--deadline" ] | [ "--compare" ]
    | [ "--serve" ] | [ "--serve-workers" ] ->
        prerr_endline usage;
        exit 2
    | "--smoke" :: rest ->
        smoke := true;
        parse rest
    | "--chaos" :: rest ->
        chaos := true;
        parse rest
    | arg :: _ ->
        Printf.eprintf "unknown argument %S\n%s\n" arg usage;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !compare_file <> None && (!chaos || !deadline <> None) then begin
    prerr_endline
      "--compare is a determinism gate; --chaos / --deadline perturb the \
       compared quantities and are not allowed with it";
    exit 2
  end;
  ( !json_file,
    !values_file,
    !smoke,
    !deadline,
    !chaos,
    !compare_file,
    !serve_file,
    !serve_workers )

(* experiments cheap enough to gate every CI run on *)
let smoke_experiments = [ "E2"; "E4"; "E10"; "E14"; "F1"; "D1" ]

(* C1 lives in bfly_check (which depends on bfly_core, not vice versa),
   so the registry rows are appended here rather than in Experiments.all *)
let all_experiments () =
  Bfly_core.Experiments.all @ [ ("C1", Bfly_check.Campaign.c1) ]

let run_experiments () =
  print_endline "==============================================================";
  print_endline " Reproduction tables (per-experiment index in DESIGN.md)";
  print_endline "==============================================================";
  let selected =
    if smoke then
      List.filter
        (fun (name, _) -> List.mem name smoke_experiments)
        (all_experiments ())
    else all_experiments ()
  in
  let c_hit = Metrics.counter "cache.hit" in
  let c_miss = Metrics.counter "cache.miss" in
  List.map
    (fun (name, f) ->
      let hit0 = Metrics.counter_value c_hit in
      let miss0 = Metrics.counter_value c_miss in
      let t0 = Span.now_ns () in
      let out =
        (* chaos mode: an injected fault escaping an experiment must not
           kill the whole bench run *)
        try f ()
        with Bfly_resil.Fault.Injected m ->
          Printf.sprintf "(survived injected fault: %s)\n" m
      in
      let wall_ns = Span.now_ns () - t0 in
      let hits = Metrics.counter_value c_hit - hit0 in
      let misses = Metrics.counter_value c_miss - miss0 in
      Printf.printf "\n--- %s ---\n%s%!" name out;
      (name, out, wall_ns, hits, misses))
    selected

(* ---- deterministic regression anchors ---- *)

(* The oracle battery runs with a fixed configuration in every mode, so
   the embedded summary is comparable across smoke and full documents. *)
let check_seed = 42
let check_rounds = 5

let run_check () =
  print_endline "\n==============================================================";
  Printf.printf " Differential oracle battery (seed %d, %d rounds, smoke)\n"
    check_seed check_rounds;
  print_endline "==============================================================";
  let json, ok =
    Bfly_check.Run.execute ~seed:check_seed ~rounds:check_rounds ~smoke:true ()
  in
  Printf.printf "%s\n%!" (if ok then "oracle: all checks passed" else "oracle: FAILURES");
  (json, ok)

(* Counter totals the CI gates key on; must be read before the Bechamel
   stage, whose timing-dependent iteration counts keep ticking cache.hit. *)
let gate_counters =
  [
    "exact.bb.nodes"; "cache.hit"; "cache.miss"; "ml.levels"; "ml.refine.moves";
    "fabric.builds"; "constructions.dimension.cuts"; "product.sandwich.checks";
    "campaign.instances"; "campaign.oracle.checks";
  ]

let gate_snapshot () =
  List.map
    (fun name -> (name, Metrics.counter_value (Metrics.counter name)))
    gate_counters

(* one Bechamel test per experiment kernel *)
let micro_tests () =
  let rng = Random.State.make [| 0xbe9c4 |] in
  let b8 = Butterfly.of_inputs 8 in
  let b256 = Butterfly.of_inputs 256 in
  let b1024 = Butterfly.of_inputs 1024 in
  let w256 = Wrapped.of_inputs 256 in
  let column_cut = Bfly_cuts.Constructions.butterfly_column_cut b256 in
  let witness = Bfly_expansion.Witness.wn_ee ~dim:4 w256 in
  let benes = Benes.create ~dim:6 in
  let benes_perm = Perm.random ~rng (2 * Benes.n benes) in
  let greedy_paths =
    Bfly_routing.Workload.greedy_random ~rng (Butterfly.of_inputs 16)
  in
  let g16 = Butterfly.graph (Butterfly.of_inputs 16) in
  let stage = Staged.stage in
  Test.make_grouped ~name:"bfly"
    [
      Test.make ~name:"E10:build-butterfly-256"
        (stage (fun () -> ignore (Butterfly.of_inputs 256)));
      Test.make ~name:"E1:cut-capacity-B256"
        (stage (fun () ->
             ignore
               (Bfly_graph.Traverse.boundary_edges (Butterfly.graph b256)
                  column_cut)));
      Test.make ~name:"E1:mos-pullback-search-B1024"
        (stage (fun () -> ignore (Bfly_cuts.Constructions.best_mos_pullback b1024)));
      Test.make ~name:"E1:exact-bb-B4"
        (stage (fun () ->
             ignore
               (Bfly_cuts.Exact.bisection_width ~upper_bound:4
                  (Butterfly.graph (Butterfly.of_inputs 4)))));
      Test.make ~name:"E1:kl-restarts-B256"
        (stage (fun () ->
             ignore
               (Bfly_cuts.Heuristics.kernighan_lin
                  ~rng:(Random.State.make [| 0x6b |])
                  ~restarts:4 (Butterfly.graph b256))));
      Test.make ~name:"E1:fm-restarts-B256"
        (stage (fun () ->
             ignore
               (Bfly_cuts.Heuristics.fiduccia_mattheyses
                  ~rng:(Random.State.make [| 0x66 |])
                  ~restarts:4 (Butterfly.graph b256))));
      Test.make ~name:"E1:sa-anneal-B256"
        (stage (fun () ->
             ignore
               (Bfly_cuts.Heuristics.annealing
                  ~rng:(Random.State.make [| 0x5a |])
                  ~restarts:2 (Butterfly.graph b256))));
      Test.make ~name:"E1:ml-bisect-B1024"
        (stage (fun () ->
             ignore
               (Bfly_cuts.Multilevel.bisect
                  ~rng:(Random.State.make [| 0x6d6c |])
                  ~restarts:2 (Butterfly.graph b1024))));
      Test.make ~name:"E2:bw-mos-closed-form-j256"
        (stage (fun () -> ignore (Bfly_mos.Mos_analysis.bw_m2 256)));
      Test.make ~name:"E3:knn-embedding-congestion-B8"
        (stage (fun () ->
             ignore
               (Bfly_embed.Embedding.congestion
                  (Bfly_embed.Classic.knn_into_butterfly b8))));
      Test.make ~name:"E5:credit-scheme-W256"
        (stage (fun () -> ignore (Bfly_expansion.Credit.wn_edge w256 witness)));
      Test.make ~name:"E5:exact-EE-W8-k6"
        (stage (fun () ->
             ignore
               (Bfly_expansion.Expansion.ee_exact
                  (Wrapped.graph (Wrapped.of_inputs 8))
                  ~k:6)));
      Test.make ~name:"E11:route-random-B16"
        (stage (fun () -> ignore (Bfly_routing.Router.run g16 ~paths:greedy_paths)));
      Test.make ~name:"E12:benes-looping-dim6"
        (stage (fun () -> ignore (Benes.route_ports benes benes_perm)));
      Test.make ~name:"Lemma2.3:monotone-path-B1024"
        (stage (fun () ->
             ignore (Butterfly.monotone_path b1024 ~input_col:37 ~output_col:901)));
      Test.make ~name:"E17:rearrange-route-B64"
        (stage
           (let b64 = Butterfly.of_inputs 64 in
            let p = Perm.random ~rng 64 in
            fun () -> ignore (Bfly_embed.Rearrange.route_ports b64 p)));
      Test.make ~name:"E15:io-separation-maxflow-B8"
        (stage (fun () -> ignore (Bfly_cuts.Io_cut.exact b8)));
      Test.make ~name:"E16:level-bisect-B32"
        (stage
           (let b32 = Butterfly.of_inputs 32 in
            let side = Bfly_cuts.Constructions.butterfly_column_cut b32 in
            fun () -> ignore (Bfly_cuts.Level_cut.bisect_some_level b32 side)));
      Test.make ~name:"E14:layout-B256"
        (stage (fun () -> ignore (Bfly_networks.Layout.butterfly_grid b256)));
    ]

let run_micro () =
  print_endline "\n==============================================================";
  print_endline " Kernel micro-benchmarks (Bechamel, monotonic clock)";
  print_endline "==============================================================";
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let cfg =
    if smoke then Benchmark.cfg ~limit:100 ~quota:(Time.second 0.05) ()
    else Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ()
  in
  (* the solver kernels are memoized in the result cache, and every
     Bechamel iteration re-solves the same fixed-seed instance — with the
     cache on, every iteration past the first would measure a lookup, not
     the kernel. Disable it for the micro phase only; the gate snapshot
     (and every compared counter) is taken before this point. *)
  let cache_was = Bfly_cache.Config.enabled () in
  Bfly_cache.Config.set_enabled false;
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] (micro_tests ()) in
  Bfly_cache.Config.set_enabled cache_was;
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  let rows = List.sort compare rows in
  Printf.printf "%-42s %16s %8s\n" "kernel" "time/run" "r^2";
  Printf.printf "%s\n" (String.make 68 '-');
  List.map
    (fun (name, est) ->
      let ns =
        match Analyze.OLS.estimates est with Some [ ns ] -> Some ns | _ -> None
      in
      let time =
        match ns with
        | Some ns ->
            if ns >= 1e9 then Printf.sprintf "%10.3f s" (ns /. 1e9)
            else if ns >= 1e6 then Printf.sprintf "%10.3f ms" (ns /. 1e6)
            else if ns >= 1e3 then Printf.sprintf "%10.3f us" (ns /. 1e3)
            else Printf.sprintf "%10.1f ns" ns
        | None -> "n/a"
      in
      let r2 = Analyze.OLS.r_square est in
      let r2_str =
        match r2 with Some r -> Printf.sprintf "%.3f" r | None -> "-"
      in
      Printf.printf "%-42s %16s %8s\n" name time r2_str;
      (name, ns, r2))
    rows

(* ---- JSON trajectory document ---- *)

let iso8601_utc () =
  let t = Unix.gmtime (Unix.time ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (t.Unix.tm_year + 1900)
    (t.Unix.tm_mon + 1) t.Unix.tm_mday t.Unix.tm_hour t.Unix.tm_min
    t.Unix.tm_sec

let json_document ~experiments ~check ~gate ~kernels =
  Json.Obj
    [
      ("schema", Json.Str "bfly-bench/2");
      ("generated_at", Json.Str (iso8601_utc ()));
      ("mode", Json.Str (if smoke then "smoke" else "full"));
      ("chaos", Json.Bool chaos);
      ( "deadline",
        match deadline with
        | None -> Json.Null
        | Some b -> Json.Str (Bfly_resil.Budget.to_string b) );
      ("domains", Json.Int (Bfly_graph.Parallel.domain_count ()));
      ( "bfly_domains_env",
        match Sys.getenv_opt "BFLY_DOMAINS" with
        | None | Some "" -> Json.Null
        | Some s -> Json.Str s );
      ( "experiments",
        Json.List
          (List.map
             (fun (name, out, wall_ns, hits, misses) ->
               Json.Obj
                 [
                   ("name", Json.Str name);
                   ("wall_ns", Json.Int wall_ns);
                   ( "cache",
                     Json.Obj
                       [ ("hit", Json.Int hits); ("miss", Json.Int misses) ] );
                   ("output", Json.Str out);
                 ])
             experiments) );
      ( "gate",
        Json.Obj (List.map (fun (name, v) -> (name, Json.Int v)) gate) );
      ("check", check);
      ( "kernels",
        Json.List
          (List.map
             (fun (name, ns, r2) ->
               Json.Obj
                 [
                   ("name", Json.Str name);
                   ( "ns_per_run",
                     match ns with Some v -> Json.Float v | None -> Json.Null );
                   ( "r_square",
                     match r2 with Some v -> Json.Float v | None -> Json.Null );
                 ])
             kernels) );
      ("metrics", Metrics.to_json ());
    ]

(* Only the deterministic parts of a run: per-experiment measured outputs,
   no timings, no cache counters, no timestamps. Two runs of the same
   build over the same experiments — warm or cold cache — must produce
   byte-identical values documents; ci.sh compares them with cmp. *)
let values_document ~experiments =
  Json.Obj
    [
      ("schema", Json.Str "bfly-bench-values/1");
      ("mode", Json.Str (if smoke then "smoke" else "full"));
      ( "experiments",
        Json.List
          (List.map
             (fun (name, out, _, _, _) ->
               Json.Obj [ ("name", Json.Str name); ("output", Json.Str out) ])
             experiments) );
    ]

let write_doc file doc =
  Out_channel.with_open_text file (fun oc ->
      output_string oc (Json.to_string doc);
      output_char oc '\n');
  Printf.printf "\nwrote %s\n" file

(* ---- --compare: counter-based regression gate ---- *)

(* Diff the deterministic fields of this build's run against a committed
   baseline document: per-experiment measured outputs, the gate counter
   totals, and the oracle summary. Timings, timestamps and Bechamel
   estimates are never compared (and Bechamel never runs here). *)
let compare_run baseline_file =
  let baseline =
    match In_channel.with_open_text baseline_file In_channel.input_all with
    | exception Sys_error e ->
        Printf.eprintf "cannot read baseline: %s\n" e;
        exit 2
    | text -> (
        match Json.of_string text with
        | Ok doc -> doc
        | Error e ->
            Printf.eprintf "baseline %s is not valid JSON: %s\n" baseline_file e;
            exit 2)
  in
  let drifts = ref [] in
  let drift fmt = Printf.ksprintf (fun m -> drifts := m :: !drifts) fmt in
  let str_field name =
    Option.bind (Json.member name baseline) Json.to_string_opt
  in
  (match str_field "schema" with
  | Some "bfly-bench/2" -> ()
  | Some other ->
      Printf.eprintf
        "baseline schema is %s, need bfly-bench/2 — regenerate the baseline \
         with --json\n"
        other;
      exit 2
  | None ->
      Printf.eprintf "baseline has no schema field\n";
      exit 2);
  let mode = if smoke then "smoke" else "full" in
  (match str_field "mode" with
  | Some m when m = mode -> ()
  | m ->
      Printf.eprintf
        "baseline mode is %s but this run is %s — pass%s --smoke to match\n"
        (Option.value m ~default:"absent")
        mode
        (if smoke then " no" else "");
      exit 2);
  (match Option.bind (Json.member "domains" baseline) Json.to_int_opt with
  | Some d when d <> Bfly_graph.Parallel.domain_count () ->
      (* heuristic chunking (hence cache traffic) depends on the pool
         width, so comparing across widths would flag phantom drift *)
      Printf.eprintf
        "baseline was generated with %d domains but this run has %d — set \
         BFLY_DOMAINS to match\n"
        d
        (Bfly_graph.Parallel.domain_count ());
      exit 2
  | _ -> ());
  let experiments = run_experiments () in
  let check, check_ok = run_check () in
  let gate = gate_snapshot () in
  if not check_ok then drift "oracle battery reported failures in this build";
  (* experiment outputs, matched by name *)
  let baseline_experiments =
    match Json.member "experiments" baseline with
    | Some (Json.List l) ->
        List.filter_map
          (fun e ->
            match
              ( Option.bind (Json.member "name" e) Json.to_string_opt,
                Option.bind (Json.member "output" e) Json.to_string_opt )
            with
            | Some n, Some o -> Some (n, o)
            | _ -> None)
          l
    | _ ->
        drift "baseline has no experiments list";
        []
  in
  List.iter
    (fun (name, out, _, _, _) ->
      match List.assoc_opt name baseline_experiments with
      | None -> drift "experiment %s missing from baseline" name
      | Some base when base <> out ->
          let first_diff a b =
            let la = String.split_on_char '\n' a
            and lb = String.split_on_char '\n' b in
            let rec go i = function
              | a :: ra, b :: rb ->
                  if a = b then go (i + 1) (ra, rb)
                  else Printf.sprintf "line %d: %S vs baseline %S" i a b
              | a :: _, [] -> Printf.sprintf "extra line %d: %S" i a
              | [], b :: _ -> Printf.sprintf "missing line %d: %S" i b
              | [], [] -> "?"
            in
            go 1 (la, lb)
          in
          drift "experiment %s output drifted (%s)" name (first_diff out base)
      | Some _ -> ())
    experiments;
  List.iter
    (fun (name, _) ->
      if not (List.exists (fun (n, _, _, _, _) -> n = name) experiments) then
        drift "experiment %s in baseline but not produced by this build" name)
    baseline_experiments;
  (* gate counters *)
  (match Json.member "gate" baseline with
  | Some g ->
      List.iter
        (fun (name, v) ->
          match Option.bind (Json.member name g) Json.to_int_opt with
          | None -> drift "gate counter %s missing from baseline" name
          | Some b when b <> v -> drift "gate counter %s = %d, baseline %d" name v b
          | Some _ -> ())
        gate
  | None -> drift "baseline has no gate object");
  (* oracle summary, as one canonical string *)
  (match Json.member "check" baseline with
  | Some b when Json.to_string b <> Json.to_string check ->
      drift "oracle summary drifted from baseline (diff the check fields of \
             the two documents)"
  | Some _ -> ()
  | None -> drift "baseline has no check object");
  match List.rev !drifts with
  | [] ->
      Printf.printf
        "\ncompare: OK — %d experiment outputs, %d gate counters and the \
         oracle summary match %s\n"
        (List.length experiments) (List.length gate) baseline_file;
      0
  | drifts ->
      Printf.printf "\ncompare: %d drift(s) against %s\n" (List.length drifts)
        baseline_file;
      List.iter (fun d -> Printf.printf "  - %s\n" d) drifts;
      1

(* ---- --serve: in-process trace replay ---- *)

let serve_replay trace_file workers =
  let lines =
    match In_channel.with_open_text trace_file In_channel.input_lines with
    | exception Sys_error e ->
        Printf.eprintf "cannot read trace: %s\n" e;
        exit 2
    | lines -> List.filter (fun l -> String.trim l <> "") lines
  in
  let n = List.length lines in
  let server = Bfly_serve.Server.create () in
  let t0 = Span.now_ns () in
  let replies, batches =
    if workers <= 0 then begin
      (* sequential: answer each response as it completes *)
      let replies = ref 0 in
      let reply line =
        incr replies;
        print_endline line
      in
      List.iter (Bfly_serve.Server.submit server ~reply) lines;
      (!replies, Bfly_serve.Server.run_pending server)
    end
    else begin
      (* concurrent: batches run on the domain pool, responses are
         buffered per submit index and printed in request order — output
         must stay byte-identical to the sequential replay *)
      let responses = Array.make n None in
      let dispatch = Bfly_serve.Dispatch.create ~cap:workers server in
      List.iteri
        (fun i line ->
          Bfly_serve.Server.submit server
            ~reply:(fun r -> responses.(i) <- Some r)
            line;
          Bfly_serve.Dispatch.pump dispatch)
        lines;
      Bfly_serve.Dispatch.pump dispatch;
      Bfly_serve.Dispatch.wait_idle dispatch;
      let replies = ref 0 in
      Array.iter
        (function
          | Some r ->
              incr replies;
              print_endline r
          | None -> ())
        responses;
      (!replies, 0)
    end
  in
  let wall_ms = float_of_int (Span.now_ns () - t0) /. 1e6 in
  Printf.eprintf "replayed %d requests in %.1fms (%d batches): %s\n" n wall_ms
    batches
    (Bfly_serve.Server.summary server);
  if replies <> n then begin
    Printf.eprintf "BUG: %d requests but %d responses\n" n replies;
    exit 1
  end;
  0

let () =
  match (serve_file, compare_file) with
  | Some trace, _ -> exit (serve_replay trace serve_workers)
  | None, Some baseline -> exit (compare_run baseline)
  | None, None ->
      (* [--deadline] supervises the reproduction stage through the ambient
         cancel token (cooperating solvers degrade when it fires); [--chaos]
         additionally arms fault injection around it. The Bechamel stage and
         the oracle battery run outside both — timings of degraded kernels
         would be meaningless, and the embedded check summary must stay the
         deterministic anchor --compare diffs against. *)
      let under_deadline f =
        match deadline with
        | None -> f ()
        | Some budget ->
            Bfly_resil.Cancel.with_ambient
              (Bfly_resil.Cancel.create ~budget ())
              f
      in
      let experiments =
        if chaos then
          Bfly_resil.Fault.scope ~seed:42 Bfly_resil.Fault.all (fun () ->
              under_deadline run_experiments)
        else under_deadline run_experiments
      in
      let check, check_ok = run_check () in
      let gate = gate_snapshot () in
      let kernels = run_micro () in
      (match json_file with
      | None -> ()
      | Some file ->
          write_doc file (json_document ~experiments ~check ~gate ~kernels));
      (match values_file with
      | None -> ()
      | Some file -> write_doc file (values_document ~experiments));
      if not check_ok then exit 1
